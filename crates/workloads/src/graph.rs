//! Power-law graph traversal — bfs and pagerank over a Twitter-like graph.
//!
//! The paper's graph workloads run on Galois over a 60 GB synthetic dataset
//! "with edge distribution modeled after a (smaller) publically-available
//! Twitter dataset" (§4). We do the same one level down: the graph is
//! implicit — vertex degrees follow a Zipf law and neighbour ids come from
//! a hash — so no adjacency storage is needed, while the *address stream*
//! has the structure that matters: a sequential component (scanning a
//! vertex's adjacency list) interleaved with high-fan-out random jumps
//! (visiting neighbours), exactly the pattern that defeats TLBs.

use crate::stream::Ranges;
use crate::{AccessStream, Zipf};
use asap_types::VirtAddr;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Traversal flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphMode {
    /// Breadth-first search: frontier-driven, bursty neighbour visits.
    Bfs,
    /// PageRank: sweep vertices in order, read each neighbour's rank.
    PageRank,
}

/// The implicit power-law graph traversal stream.
#[derive(Debug, Clone)]
pub struct GraphStream {
    ranges: Ranges,
    mode: GraphMode,
    vertices: u64,
    degree_dist: Zipf,
    /// Popularity distribution for neighbour picks: real Twitter-like
    /// graphs have power-law in-degree, so traversals revisit hub vertices
    /// constantly — the temporal locality that keeps hub PT lines cached.
    popularity: Zipf,
    rng: SmallRng,
    /// Current vertex and how many of its neighbours remain to visit.
    current_vertex: u64,
    neighbours_left: u64,
    neighbour_index: u64,
    /// BFS frontier (bounded).
    frontier: Vec<u64>,
    /// PageRank sweep position.
    sweep: u64,
    hash_key: u64,
}

/// Bytes of per-vertex state (rank, offsets) — 16 B like a CSR row stub.
const VERTEX_BYTES: u64 = 16;

impl GraphStream {
    /// Creates a traversal over a graph sized to fill `ranges`.
    #[must_use]
    pub fn new(ranges: Ranges, mode: GraphMode, seed: u64) -> Self {
        // Vertex array occupies ~1/4 of the footprint, edges the rest.
        let vertices = (ranges.total_bytes() / 4 / VERTEX_BYTES).max(1024);
        Self {
            ranges,
            mode,
            vertices,
            // Twitter-like: heavy-tailed degrees, mean bounded below ~64.
            degree_dist: Zipf::new(64, 0.8),
            popularity: Zipf::new(vertices, 1.25),
            rng: SmallRng::seed_from_u64(seed),
            current_vertex: 0,
            neighbours_left: 0,
            neighbour_index: 0,
            frontier: Vec::with_capacity(1024),
            sweep: 0,
            hash_key: seed ^ 0x6AF,
        }
    }

    fn hash(&self, a: u64, b: u64) -> u64 {
        let mut x = a
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(b)
            .wrapping_add(self.hash_key);
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 31;
        x
    }

    /// Address of a vertex's state record.
    fn vertex_addr(&self, v: u64) -> VirtAddr {
        let byte = (v % self.vertices) * VERTEX_BYTES;
        let page = byte / asap_types::PAGE_SIZE;
        let off = byte % asap_types::PAGE_SIZE;
        VirtAddr::new_unchecked(self.ranges.page(page).raw() + off)
    }

    /// Address of the i-th edge of vertex `v` (edge region: the remaining
    /// 3/4 of the footprint, hash-placed per vertex, sequential per edge).
    fn edge_addr(&self, v: u64, i: u64) -> VirtAddr {
        let vertex_pages = self.vertices * VERTEX_BYTES / asap_types::PAGE_SIZE;
        let edge_pages = self.ranges.total_pages() - vertex_pages;
        let base_page = vertex_pages + self.hash(v, 0) % edge_pages.max(1);
        // Sequential within the adjacency list: 8 B per edge.
        let byte = i * 8;
        let page = (base_page + byte / asap_types::PAGE_SIZE) % self.ranges.total_pages();
        VirtAddr::new_unchecked(self.ranges.page(page).raw() + byte % asap_types::PAGE_SIZE)
    }

    fn pick_next_vertex(&mut self) -> u64 {
        match self.mode {
            GraphMode::Bfs => {
                if let Some(v) = self.frontier.pop() {
                    v
                } else {
                    // Frontier drained: restart from a random seed vertex
                    // (the next BFS of the benchmark's outer loop).
                    self.rng.gen_range(0..self.vertices)
                }
            }
            GraphMode::PageRank => {
                self.sweep = (self.sweep + 1) % self.vertices;
                self.sweep
            }
        }
    }
}

impl AccessStream for GraphStream {
    fn next_va(&mut self) -> VirtAddr {
        if self.neighbours_left == 0 {
            // Move to the next vertex: access its state record.
            self.current_vertex = self.pick_next_vertex();
            self.neighbours_left = self.degree_dist.sample(&mut self.rng);
            self.neighbour_index = 0;
            return self.vertex_addr(self.current_vertex);
        }
        // Visit one neighbour: read the edge slot, then the neighbour's
        // record on the *next* call (alternate via index parity).
        self.neighbour_index += 1;
        self.neighbours_left -= 1;
        if self.neighbour_index % 2 == 1 {
            self.edge_addr(self.current_vertex, self.neighbour_index)
        } else {
            // Pick a neighbour by popularity rank (power-law in-degree),
            // scrambling rank -> vertex id so hubs spread across the array.
            let rank = self.popularity.sample(&mut self.rng) - 1;
            let neighbour = self.hash(rank, 0x4E16) % self.vertices;
            if self.mode == GraphMode::Bfs && self.frontier.len() < 1024 {
                self.frontier.push(neighbour);
            }
            self.vertex_addr(neighbour)
        }
    }

    fn name(&self) -> &'static str {
        match self.mode {
            GraphMode::Bfs => "bfs",
            GraphMode::PageRank => "pagerank",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn ranges() -> Ranges {
        Ranges::new(vec![(0x10_0000_0000, 16 << 20)]) // 16 MiB graph
    }

    #[test]
    fn stays_in_range() {
        for mode in [GraphMode::Bfs, GraphMode::PageRank] {
            let mut s = GraphStream::new(ranges(), mode, 1);
            for _ in 0..5000 {
                let va = s.next_va().raw();
                assert!(
                    (0x10_0000_0000..0x10_0000_0000 + (16 << 20)).contains(&va),
                    "{mode:?} escaped its range"
                );
            }
        }
    }

    #[test]
    fn touches_wide_page_set() {
        let mut s = GraphStream::new(ranges(), GraphMode::Bfs, 2);
        let pages: HashSet<u64> = (0..20_000).map(|_| s.next_va().raw() >> 12).collect();
        assert!(
            pages.len() > 200,
            "graph traversal must roam: {}",
            pages.len()
        );
    }

    #[test]
    fn pagerank_differs_from_bfs_and_is_deterministic() {
        let draw = |mode, seed| {
            let mut s = GraphStream::new(ranges(), mode, seed);
            (0..5000).map(|_| s.next_va().raw()).collect::<Vec<_>>()
        };
        // Deterministic per seed.
        assert_eq!(draw(GraphMode::PageRank, 3), draw(GraphMode::PageRank, 3));
        // The two traversals generate different streams over the same graph.
        assert_ne!(draw(GraphMode::PageRank, 3), draw(GraphMode::Bfs, 3));
    }

    #[test]
    fn modes_have_names() {
        assert_eq!(GraphStream::new(ranges(), GraphMode::Bfs, 0).name(), "bfs");
        assert_eq!(
            GraphStream::new(ranges(), GraphMode::PageRank, 0).name(),
            "pagerank"
        );
    }
}
