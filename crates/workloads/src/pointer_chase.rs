//! Pointer-chasing with a hot working set — mcf and canneal.

use crate::stream::Ranges;
use crate::AccessStream;
use asap_types::VirtAddr;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A pointer-chase model: with probability `reuse`, the next reference
/// re-visits a recently-used page (geometrically distributed stack
/// distance); otherwise it jumps to a uniformly random page. This
/// reproduces the moderate temporal locality that lets mcf's upper PT
/// levels live in the PWCs (Fig. 9a) while its PL1 entries still miss.
#[derive(Debug, Clone)]
pub struct PointerChaseStream {
    ranges: Ranges,
    reuse: f64,
    /// Recently used page indices (bounded LRU-ish stack).
    recent: Vec<u64>,
    capacity: usize,
    /// Mean sequential-scan length in pages after a cold jump (array
    /// traversals between pointer dereferences; 0 disables scanning).
    scan_mean: u64,
    scan_page: u64,
    scan_left: u64,
    rng: SmallRng,
}

impl PointerChaseStream {
    /// Creates a stream with the given reuse probability, hot-stack
    /// capacity (in pages) and mean cold-scan length (in pages).
    ///
    /// # Panics
    ///
    /// Panics if `reuse` is outside `[0, 1)` or `capacity` is zero.
    #[must_use]
    pub fn new(ranges: Ranges, reuse: f64, capacity: usize, scan_mean: u64, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&reuse), "reuse must be in [0, 1)");
        assert!(capacity > 0, "hot stack cannot be empty");
        Self {
            ranges,
            reuse,
            recent: Vec::with_capacity(capacity),
            capacity,
            scan_mean,
            scan_page: 0,
            scan_left: 0,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    fn push_recent(&mut self, page: u64) {
        if self.recent.len() == self.capacity {
            self.recent.remove(0);
        }
        self.recent.push(page);
    }
}

impl AccessStream for PointerChaseStream {
    fn next_va(&mut self) -> VirtAddr {
        let page = if self.scan_left > 0 {
            // Continue the cold sequential scan.
            self.scan_left -= 1;
            self.scan_page = (self.scan_page + 1) % self.ranges.total_pages();
            self.scan_page
        } else if !self.recent.is_empty() && self.rng.gen::<f64>() < self.reuse {
            if self.rng.gen::<f64>() < 0.5 {
                // Geometric preference for the most recent entries.
                let mut idx = self.recent.len() - 1;
                while idx > 0 && self.rng.gen::<f64>() < 0.5 {
                    idx -= 1;
                }
                self.recent[idx]
            } else {
                // Log-uniform age over the whole stack: a smooth
                // reuse-distance spectrum (see uniform.rs).
                let len = self.recent.len();
                let age = ((len as f64).powf(self.rng.gen::<f64>()) as usize).min(len - 1);
                self.recent[len - 1 - age]
            }
        } else {
            // Cold jump, optionally starting a sequential scan.
            let p = self.rng.gen_range(0..self.ranges.total_pages());
            if self.scan_mean > 0 {
                self.scan_left = self.rng.gen_range(1..=2 * self.scan_mean - 1) - 1;
                self.scan_page = p;
            }
            p
        };
        self.push_recent(page);
        let offset = self.rng.gen_range(0..64u64) * 64;
        VirtAddr::new_unchecked(self.ranges.page(page).raw() + offset)
    }

    fn name(&self) -> &'static str {
        "pointer-chase"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn ranges() -> Ranges {
        Ranges::new(vec![(0x200000, 4096 * 4096)])
    }

    #[test]
    fn high_reuse_touches_few_pages() {
        let mut hot = PointerChaseStream::new(ranges(), 0.95, 64, 0, 1);
        let mut cold = PointerChaseStream::new(ranges(), 0.05, 64, 0, 1);
        let hot_pages: HashSet<u64> = (0..5000).map(|_| hot.next_va().raw() >> 12).collect();
        let cold_pages: HashSet<u64> = (0..5000).map(|_| cold.next_va().raw() >> 12).collect();
        assert!(
            hot_pages.len() * 2 < cold_pages.len(),
            "hot {} vs cold {}",
            hot_pages.len(),
            cold_pages.len()
        );
    }

    #[test]
    fn stays_in_range() {
        let mut s = PointerChaseStream::new(ranges(), 0.5, 32, 4, 2);
        for _ in 0..1000 {
            let va = s.next_va().raw();
            assert!((0x200000..0x200000 + 4096 * 4096).contains(&va));
        }
    }

    #[test]
    fn deterministic() {
        let mk = || {
            let mut s = PointerChaseStream::new(ranges(), 0.7, 16, 4, 9);
            (0..100).map(|_| s.next_va().raw()).collect::<Vec<_>>()
        };
        assert_eq!(mk(), mk());
    }
}
