//! Uniform random access — memcached's GET traffic.

use crate::stream::Ranges;
use crate::AccessStream;
use asap_types::VirtAddr;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Uniformly random page accesses over the workload's data ranges, the
/// worst case for every translation cache — the paper's memcached model
/// ("irregular access patterns ... poor spatio-temporal locality", §2.2).
///
/// A `hot_fraction` < 1 restricts the stream to a leading fraction of the
/// dataset, which is how smaller *touched* working sets are modelled
/// without changing the reserved footprint.
#[derive(Debug, Clone)]
pub struct UniformStream {
    ranges: Ranges,
    hot_pages: u64,
    /// Mean sequential run length in pages (key-value items span pages; a
    /// GET reads them back-to-back). Adjacent pages share a PTE cache
    /// line, which is what gives real walks their L1-D hits (Fig. 9).
    seq_run: u64,
    run_page: u64,
    run_left: u64,
    /// Recently-accessed run starts: popular keys repeat at medium reuse
    /// distances — beyond TLB reach, but with PTE lines still cached when
    /// running in isolation. This is precisely the traffic SMT colocation
    /// hurts (paper §2.2).
    revisit_buf: Vec<u64>,
    revisit_pos: usize,
    rng: SmallRng,
}

/// Probability that a new run revisits a recently-used region.
const REVISIT_PROB: f64 = 0.6;
/// Revisit window in run starts (larger than the L2 S-TLB's 1536-page
/// reach so distant revisits still walk).
const REVISIT_WINDOW: usize = 65536;

impl UniformStream {
    /// Creates a stream over `ranges`, touching the first `hot_fraction`
    /// of its pages, with sequential runs of mean `seq_run` pages.
    ///
    /// # Panics
    ///
    /// Panics if `hot_fraction` is not in `(0, 1]` or `seq_run` is zero.
    #[must_use]
    pub fn new(ranges: Ranges, hot_fraction: f64, seq_run: u64, seed: u64) -> Self {
        assert!(
            hot_fraction > 0.0 && hot_fraction <= 1.0,
            "hot fraction must be in (0, 1]"
        );
        assert!(seq_run > 0, "sequential runs have at least one page");
        let hot_pages = ((ranges.total_pages() as f64 * hot_fraction) as u64).max(1);
        Self {
            ranges,
            hot_pages,
            seq_run,
            run_page: 0,
            run_left: 0,
            revisit_buf: Vec::with_capacity(REVISIT_WINDOW),
            revisit_pos: 0,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Pages the stream can touch.
    #[must_use]
    pub fn hot_pages(&self) -> u64 {
        self.hot_pages
    }
}

impl AccessStream for UniformStream {
    fn next_va(&mut self) -> VirtAddr {
        let page = if self.run_left > 0 {
            self.run_left -= 1;
            self.run_page = (self.run_page + 1) % self.hot_pages;
            self.run_page
        } else {
            let p = if !self.revisit_buf.is_empty() && self.rng.gen::<f64>() < REVISIT_PROB {
                // Log-uniform revisit age: a smooth reuse-distance spectrum
                // spanning the L1/L2/LLC retention boundaries, like real
                // key-popularity traffic.
                let len = self.revisit_buf.len();
                let age = ((len as f64).powf(self.rng.gen::<f64>()) as usize).min(len - 1);
                let newest = (self.revisit_pos + len - 1) % len;
                self.revisit_buf[(newest + len - age) % len]
            } else {
                self.rng.gen_range(0..self.hot_pages)
            };
            if self.revisit_buf.len() < REVISIT_WINDOW {
                self.revisit_buf.push(p);
                self.revisit_pos = self.revisit_buf.len() % REVISIT_WINDOW;
            } else {
                self.revisit_buf[self.revisit_pos] = p;
                self.revisit_pos = (self.revisit_pos + 1) % REVISIT_WINDOW;
            }
            // Uniform in [1, 2*mean - 1] has mean `seq_run`.
            self.run_left = self.rng.gen_range(1..=2 * self.seq_run - 1) - 1;
            self.run_page = p;
            p
        };
        let offset = self.rng.gen_range(0..64u64) * 64; // a random line
        VirtAddr::new_unchecked(self.ranges.page(page).raw() + offset)
    }

    fn name(&self) -> &'static str {
        "uniform"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ranges() -> Ranges {
        Ranges::new(vec![(0x100000, 64 * 4096)])
    }

    #[test]
    fn stays_in_range() {
        let mut s = UniformStream::new(ranges(), 1.0, 1, 1);
        for _ in 0..1000 {
            let va = s.next_va().raw();
            assert!((0x100000..0x100000 + 64 * 4096).contains(&va));
        }
    }

    #[test]
    fn hot_fraction_limits_pages() {
        let mut s = UniformStream::new(ranges(), 0.25, 1, 1);
        assert_eq!(s.hot_pages(), 16);
        for _ in 0..1000 {
            let va = s.next_va().raw();
            assert!(va < 0x100000 + 16 * 4096);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut s = UniformStream::new(ranges(), 1.0, 1, 9);
            (0..50).map(|_| s.next_va().raw()).collect()
        };
        let b: Vec<u64> = {
            let mut s = UniformStream::new(ranges(), 1.0, 1, 9);
            (0..50).map(|_| s.next_va().raw()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn seq_runs_produce_adjacent_pages() {
        let mut s = UniformStream::new(ranges(), 1.0, 8, 5);
        let pages: Vec<u64> = (0..2000).map(|_| s.next_va().raw() >> 12).collect();
        let adjacent = pages.windows(2).filter(|w| w[1] == w[0] + 1).count();
        // Mean run 8 => ~7/8 of transitions are sequential.
        assert!(adjacent * 10 > pages.len() * 6, "adjacent = {adjacent}");
    }

    #[test]
    fn touches_many_distinct_pages() {
        let mut s = UniformStream::new(ranges(), 1.0, 1, 3);
        let pages: std::collections::HashSet<u64> =
            (0..2000).map(|_| s.next_va().raw() >> 12).collect();
        assert!(
            pages.len() > 50,
            "uniform stream must spread: {}",
            pages.len()
        );
    }
}
