//! Chrome trace-event JSON: the export format Perfetto (ui.perfetto.dev)
//! and `chrome://tracing` open directly.
//!
//! Only the subset the simulator emits is modelled: metadata events
//! (`"ph":"M"`, process/thread names), complete events (`"ph":"X"`, the
//! walk spans) and thread-scoped instants (`"ph":"i"`). One simulated
//! cycle maps to one microsecond of trace time.
//!
//! The emitter has a single canonical layout (one event per line, fixed
//! key order) and [`parse`] accepts exactly that layout — which is what
//! makes the CI round-trip gate (`asap trace-check`) a byte-identity
//! check rather than a semantic diff.

use crate::metrics::escape;
use crate::trace::TraceEvent;
use crate::trace::TraceEventKind;

/// The event phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ph {
    /// Metadata (`"M"`): process/thread names.
    Meta,
    /// Complete (`"X"`): a span with `ts` + `dur`.
    Complete,
    /// Instant (`"i"`), thread-scoped.
    Instant,
}

/// An argument value (the `args` map).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgValue {
    /// A string argument.
    Str(String),
    /// An integer argument.
    Num(u64),
}

/// One trace event, in emission-ready form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChromeEvent {
    /// Phase.
    pub ph: Ph,
    /// Process id (one per run in a scenario fan-out).
    pub pid: u32,
    /// Thread id (one per simulated core; 0 is the scheduler track).
    pub tid: u32,
    /// Timestamp in µs (simulated cycles); `None` for metadata.
    pub ts: Option<u64>,
    /// Duration in µs; `Some` only for complete events.
    pub dur: Option<u64>,
    /// Event name.
    pub name: String,
    /// Ordered argument list.
    pub args: Vec<(String, ArgValue)>,
}

impl ChromeEvent {
    /// A `process_name` metadata event.
    #[must_use]
    pub fn process_name(pid: u32, name: &str) -> Self {
        Self {
            ph: Ph::Meta,
            pid,
            tid: 0,
            ts: None,
            dur: None,
            name: "process_name".into(),
            args: vec![("name".into(), ArgValue::Str(name.into()))],
        }
    }

    /// A `thread_name` metadata event.
    #[must_use]
    pub fn thread_name(pid: u32, tid: u32, name: &str) -> Self {
        Self {
            ph: Ph::Meta,
            pid,
            tid,
            ts: None,
            dur: None,
            name: "thread_name".into(),
            args: vec![("name".into(), ArgValue::Str(name.into()))],
        }
    }

    /// Converts a recorded [`TraceEvent`] into its Chrome form: walks
    /// become complete events spanning their latency, everything else a
    /// thread-scoped instant.
    #[must_use]
    pub fn from_trace(pid: u32, tid: u32, event: &TraceEvent) -> Self {
        let (dur, args) = match event.kind {
            TraceEventKind::Walk { latency } => (
                Some(latency),
                vec![("latency_cycles".into(), ArgValue::Num(latency))],
            ),
            TraceEventKind::TlbHit { level } => (
                None,
                vec![("level".into(), ArgValue::Num(u64::from(level)))],
            ),
            _ => (None, Vec::new()),
        };
        Self {
            ph: if dur.is_some() {
                Ph::Complete
            } else {
                Ph::Instant
            },
            pid,
            tid,
            ts: Some(event.ts),
            dur,
            name: event.kind.name().into(),
            args,
        }
    }

    fn emit(&self, out: &mut String) {
        use std::fmt::Write as _;
        let ph = match self.ph {
            Ph::Meta => "M",
            Ph::Complete => "X",
            Ph::Instant => "i",
        };
        let _ = write!(
            out,
            "{{\"ph\":\"{ph}\",\"pid\":{},\"tid\":{}",
            self.pid, self.tid
        );
        if let Some(ts) = self.ts {
            let _ = write!(out, ",\"ts\":{ts}");
        }
        if let Some(dur) = self.dur {
            let _ = write!(out, ",\"dur\":{dur}");
        }
        if self.ph == Ph::Instant {
            out.push_str(",\"s\":\"t\"");
        }
        let _ = write!(out, ",\"name\":\"{}\",\"args\":{{", escape(&self.name));
        for (i, (k, v)) in self.args.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":", escape(k));
            match v {
                ArgValue::Str(s) => {
                    let _ = write!(out, "\"{}\"", escape(s));
                }
                ArgValue::Num(n) => {
                    let _ = write!(out, "{n}");
                }
            }
        }
        out.push_str("}}");
    }
}

/// Emits the canonical Chrome trace document: `{"traceEvents": [...]}`
/// with one event per line.
#[must_use]
pub fn to_json(events: &[ChromeEvent]) -> String {
    let mut out = String::from("{\"traceEvents\": [\n");
    for (i, e) in events.iter().enumerate() {
        e.emit(&mut out);
        out.push_str(if i + 1 < events.len() { ",\n" } else { "\n" });
    }
    out.push_str("]}\n");
    out
}

/// Why a document failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset the parser gave up at.
    pub at: usize,
    /// What it expected there.
    pub expected: &'static str,
}

impl core::fmt::Display for ParseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "byte {}: expected {}", self.at, self.expected)
    }
}

impl std::error::Error for ParseError {}

/// Parses a document emitted by [`to_json`]. Strict by design: the
/// grammar is exactly the emitter's canonical layout, so
/// `to_json(&parse(doc)?) == doc` for every accepted `doc`.
///
/// # Errors
///
/// Returns [`ParseError`] on the first byte deviating from the canonical
/// layout.
pub fn parse(text: &str) -> Result<Vec<ChromeEvent>, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.expect("{\"traceEvents\": [\n")?;
    let mut events = Vec::new();
    if !p.peek("]}") {
        loop {
            events.push(p.event()?);
            if p.eat(",\n") {
                continue;
            }
            p.expect("\n")?;
            break;
        }
    }
    p.expect("]}\n")?;
    if p.pos != p.bytes.len() {
        return Err(p.err("end of document"));
    }
    Ok(events)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, expected: &'static str) -> ParseError {
        ParseError {
            at: self.pos,
            expected,
        }
    }

    fn peek(&self, s: &str) -> bool {
        self.bytes[self.pos..].starts_with(s.as_bytes())
    }

    fn eat(&mut self, s: &str) -> bool {
        if self.peek(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, s: &'static str) -> Result<(), ParseError> {
        if self.eat(s) {
            Ok(())
        } else {
            Err(self.err(s))
        }
    }

    fn num(&mut self) -> Result<u64, ParseError> {
        let start = self.pos;
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_digit() {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("digit"));
        }
        core::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| self.err("u64"))
    }

    /// A quoted string, unescaping what [`escape`] produces.
    fn string(&mut self) -> Result<String, ParseError> {
        self.expect("\"")?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("closing quote")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| core::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .and_then(char::from_u32)
                                .ok_or_else(|| self.err("\\uXXXX escape"))?;
                            out.push(hex);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("escape character")),
                    }
                    self.pos += 1;
                }
                Some(&b) => {
                    // Multi-byte UTF-8 sequences pass through unchanged.
                    let len = match b {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let s = core::str::from_utf8(
                        self.bytes
                            .get(self.pos..self.pos + len)
                            .ok_or_else(|| self.err("utf-8 sequence"))?,
                    )
                    .map_err(|_| self.err("utf-8 sequence"))?;
                    out.push_str(s);
                    self.pos += len;
                }
            }
        }
    }

    fn event(&mut self) -> Result<ChromeEvent, ParseError> {
        self.expect("{\"ph\":\"")?;
        let ph = if self.eat("M") {
            Ph::Meta
        } else if self.eat("X") {
            Ph::Complete
        } else if self.eat("i") {
            Ph::Instant
        } else {
            return Err(self.err("phase M, X or i"));
        };
        self.expect("\",\"pid\":")?;
        let pid = self.num()? as u32;
        self.expect(",\"tid\":")?;
        let tid = self.num()? as u32;
        let mut ts = None;
        let mut dur = None;
        match ph {
            Ph::Meta => {}
            Ph::Complete => {
                self.expect(",\"ts\":")?;
                ts = Some(self.num()?);
                self.expect(",\"dur\":")?;
                dur = Some(self.num()?);
            }
            Ph::Instant => {
                self.expect(",\"ts\":")?;
                ts = Some(self.num()?);
                self.expect(",\"s\":\"t\"")?;
            }
        }
        self.expect(",\"name\":")?;
        let name = self.string()?;
        self.expect(",\"args\":{")?;
        let mut args = Vec::new();
        if !self.eat("}") {
            loop {
                let key = self.string()?;
                self.expect(":")?;
                let value = if self.peek("\"") {
                    ArgValue::Str(self.string()?)
                } else {
                    ArgValue::Num(self.num()?)
                };
                args.push((key, value));
                if self.eat(",") {
                    continue;
                }
                self.expect("}")?;
                break;
            }
        }
        self.expect("}")?;
        Ok(ChromeEvent {
            ph,
            pid,
            tid,
            ts,
            dur,
            name,
            args,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<ChromeEvent> {
        vec![
            ChromeEvent::process_name(1, "fig10/mc80/Baseline"),
            ChromeEvent::thread_name(1, 1, "mc80@core0"),
            ChromeEvent::from_trace(
                1,
                1,
                &TraceEvent {
                    ts: 10,
                    core: 0,
                    kind: TraceEventKind::Walk { latency: 191 },
                },
            ),
            ChromeEvent::from_trace(
                1,
                1,
                &TraceEvent {
                    ts: 220,
                    core: 0,
                    kind: TraceEventKind::TlbHit { level: 2 },
                },
            ),
            ChromeEvent::from_trace(
                1,
                1,
                &TraceEvent {
                    ts: 230,
                    core: 0,
                    kind: TraceEventKind::PrefetchIssue,
                },
            ),
        ]
    }

    #[test]
    fn emits_canonical_lines() {
        let json = to_json(&sample());
        assert!(json.starts_with("{\"traceEvents\": [\n"));
        assert!(json.ends_with("\n]}\n"));
        assert!(json.contains(
            "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\
             \"args\":{\"name\":\"fig10/mc80/Baseline\"}}"
        ));
        assert!(json.contains(
            "{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":10,\"dur\":191,\
             \"name\":\"walk\",\"args\":{\"latency_cycles\":191}}"
        ));
        assert!(json.contains(
            "{\"ph\":\"i\",\"pid\":1,\"tid\":1,\"ts\":220,\"s\":\"t\",\
             \"name\":\"tlb_hit_l2\",\"args\":{\"level\":2}}"
        ));
    }

    #[test]
    fn round_trip_is_byte_identical() {
        let json = to_json(&sample());
        let parsed = parse(&json).expect("parses");
        assert_eq!(parsed, sample());
        assert_eq!(to_json(&parsed), json);
    }

    #[test]
    fn empty_document_round_trips() {
        let json = to_json(&[]);
        assert_eq!(json, "{\"traceEvents\": [\n]}\n");
        assert_eq!(parse(&json).unwrap(), Vec::new());
    }

    #[test]
    fn escaped_names_round_trip() {
        let events = vec![ChromeEvent::process_name(2, "a\"b\\c")];
        let json = to_json(&events);
        let parsed = parse(&json).unwrap();
        assert_eq!(parsed[0].args[0].1, ArgValue::Str("a\"b\\c".into()));
        assert_eq!(to_json(&parsed), json);
    }

    #[test]
    fn rejects_non_canonical_input() {
        assert!(parse("{}").is_err());
        assert!(parse("{\"traceEvents\": [\n]}").is_err(), "missing newline");
        let err = parse("{\"traceEvents\": [\nnope\n]}\n").unwrap_err();
        assert_eq!(err.expected, "{\"ph\":\"");
        assert!(!err.to_string().is_empty());
    }
}
