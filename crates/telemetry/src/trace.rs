//! The structured event tracer: a fixed-capacity ring buffer of simulated
//! events, cheap enough to sit inside the translation hot path behind an
//! `Option` that is `None` when tracing is off.

/// What happened. Timestamps are simulated cycles; `Walk` is the only
/// *spanning* event (it carries a duration), everything else is an
/// instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEventKind {
    /// A TLB hit at the given level (1 = L1, 2 = L2, 3 = clustered/block).
    TlbHit {
        /// TLB level that hit.
        level: u8,
    },
    /// A completed page walk; `ts` is the walk start, `latency` its span.
    Walk {
        /// Walk latency in cycles (the event's duration).
        latency: u64,
    },
    /// An ASAP prefetch issued to the hierarchy.
    PrefetchIssue,
    /// An ASAP prefetch dropped for lack of an MSHR.
    PrefetchDrop,
    /// A demand walk access merged with an in-flight prefetch MSHR.
    MshrMerge,
    /// A DRAM access served by a remote NUMA node (paid the hop penalty).
    NumaHop,
    /// The event-queue scheduler popped this core as the arbitration
    /// winner.
    ArbPop,
    /// The scheduler pushed the core back into the event queue.
    ArbPush,
}

impl TraceEventKind {
    /// The Perfetto-visible event name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TraceEventKind::TlbHit { level: 1 } => "tlb_hit_l1",
            TraceEventKind::TlbHit { level: 2 } => "tlb_hit_l2",
            TraceEventKind::TlbHit { .. } => "tlb_hit_other",
            TraceEventKind::Walk { .. } => "walk",
            TraceEventKind::PrefetchIssue => "prefetch_issue",
            TraceEventKind::PrefetchDrop => "prefetch_drop",
            TraceEventKind::MshrMerge => "mshr_merge",
            TraceEventKind::NumaHop => "numa_hop",
            TraceEventKind::ArbPop => "arb_pop",
            TraceEventKind::ArbPush => "arb_push",
        }
    }
}

/// One recorded event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated cycle the event happened at (walk: started at).
    pub ts: u64,
    /// The core the event belongs to.
    pub core: u32,
    /// What happened.
    pub kind: TraceEventKind,
}

/// Default ring capacity: enough for the tail of a full measurement
/// window without letting a 64-core fig-scale run balloon memory.
pub const DEFAULT_CAPACITY: usize = 65_536;

/// A fixed-capacity ring buffer of [`TraceEvent`]s. When full, the oldest
/// events are overwritten; [`TraceSink::recorded`] keeps the true total so
/// exporters can report how much was dropped.
#[derive(Debug, Clone)]
pub struct TraceSink {
    events: Vec<TraceEvent>,
    capacity: usize,
    /// Next slot to overwrite once the buffer is full.
    head: usize,
    recorded: u64,
    core: u32,
}

impl Default for TraceSink {
    fn default() -> Self {
        Self::new(DEFAULT_CAPACITY)
    }
}

impl TraceSink {
    /// Creates a sink holding at most `capacity` events (min 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            events: Vec::new(),
            capacity: capacity.max(1),
            head: 0,
            recorded: 0,
            core: 0,
        }
    }

    /// Sets the core id stamped on subsequently recorded events.
    #[must_use]
    pub fn for_core(mut self, core: u32) -> Self {
        self.core = core;
        self
    }

    /// The core id this sink stamps.
    #[must_use]
    pub fn core(&self) -> u32 {
        self.core
    }

    /// Records one event at simulated cycle `ts`, stamped with this
    /// sink's core id.
    pub fn record(&mut self, ts: u64, kind: TraceEventKind) {
        self.record_for(ts, self.core, kind);
    }

    /// Records one event for an explicit core — for shared tracks (the
    /// scheduler's arbitration timeline) where a single sink observes
    /// every core.
    pub fn record_for(&mut self, ts: u64, core: u32, kind: TraceEventKind) {
        self.recorded += 1;
        let event = TraceEvent { ts, core, kind };
        if self.events.len() < self.capacity {
            self.events.push(event);
        } else {
            self.events[self.head] = event;
            self.head = (self.head + 1) % self.capacity;
        }
    }

    /// Total events ever recorded (including overwritten ones).
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Events lost to ring overwrite.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.recorded - self.events.len() as u64
    }

    /// The retained events in chronological (recording) order.
    #[must_use]
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.events.len());
        out.extend_from_slice(&self.events[self.head..]);
        out.extend_from_slice(&self.events[..self.head]);
        out
    }

    /// Consumes the sink into a [`CoreTrace`] labelled `label`.
    #[must_use]
    pub fn into_core_trace(self, label: String) -> CoreTrace {
        CoreTrace {
            core: self.core,
            label,
            dropped: self.dropped(),
            events: self.events(),
        }
    }
}

/// The harvested trace of one simulated core.
#[derive(Debug, Clone)]
pub struct CoreTrace {
    /// The core id (thread id in the Chrome trace).
    pub core: u32,
    /// Human-readable track label (workload@core).
    pub label: String,
    /// Retained events, chronological.
    pub events: Vec<TraceEvent>,
    /// Events lost to ring overwrite.
    pub dropped: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order_below_capacity() {
        let mut sink = TraceSink::new(8).for_core(3);
        sink.record(1, TraceEventKind::TlbHit { level: 1 });
        sink.record(2, TraceEventKind::Walk { latency: 10 });
        let events = sink.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].ts, 1);
        assert_eq!(events[1].kind, TraceEventKind::Walk { latency: 10 });
        assert!(events.iter().all(|e| e.core == 3));
        assert_eq!(sink.dropped(), 0);
    }

    #[test]
    fn ring_overwrites_oldest() {
        let mut sink = TraceSink::new(4);
        for ts in 0..10u64 {
            sink.record(ts, TraceEventKind::ArbPop);
        }
        assert_eq!(sink.recorded(), 10);
        assert_eq!(sink.dropped(), 6);
        let ts: Vec<u64> = sink.events().iter().map(|e| e.ts).collect();
        assert_eq!(ts, [6, 7, 8, 9], "keeps the newest, chronological");
    }

    #[test]
    fn into_core_trace_carries_everything() {
        let mut sink = TraceSink::new(2).for_core(1);
        for ts in 0..3u64 {
            sink.record(ts, TraceEventKind::MshrMerge);
        }
        let trace = sink.into_core_trace("mc80@core1".into());
        assert_eq!(trace.core, 1);
        assert_eq!(trace.label, "mc80@core1");
        assert_eq!(trace.dropped, 1);
        assert_eq!(trace.events.len(), 2);
    }

    #[test]
    fn record_for_stamps_explicit_cores() {
        let mut sink = TraceSink::new(4).for_core(0);
        sink.record_for(5, 2, TraceEventKind::ArbPop);
        sink.record(6, TraceEventKind::ArbPush);
        let events = sink.events();
        assert_eq!(events[0].core, 2);
        assert_eq!(events[1].core, 0, "record() keeps the sink's own core");
    }

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(TraceEventKind::TlbHit { level: 1 }.name(), "tlb_hit_l1");
        assert_eq!(TraceEventKind::TlbHit { level: 2 }.name(), "tlb_hit_l2");
        assert_eq!(TraceEventKind::Walk { latency: 5 }.name(), "walk");
        assert_eq!(TraceEventKind::NumaHop.name(), "numa_hop");
    }
}
