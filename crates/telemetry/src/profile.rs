//! The simulator self-profile: where the driver's wall-clock time goes,
//! split into the phases every run shares (setup, warmup, measure,
//! stats-flush), plus the simulation rate achieved in the measure window.

use std::time::Duration;

/// Wall-clock phase split of one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseProfile {
    /// Process/page-table/engine construction and context load.
    pub setup: Duration,
    /// The warmup window of the driver loop.
    pub warmup: Duration,
    /// The measurement window of the driver loop.
    pub measure: Duration,
    /// Stats snapshotting and result assembly.
    pub flush: Duration,
    /// Accesses simulated in the measure window (all cores).
    pub measure_accesses: u64,
}

impl PhaseProfile {
    /// Total wall-clock across all phases.
    #[must_use]
    pub fn total(&self) -> Duration {
        self.setup + self.warmup + self.measure + self.flush
    }

    /// Simulated accesses per wall-clock second in the measure window
    /// (the epochs/s figure for the ROADMAP speed work).
    #[must_use]
    pub fn accesses_per_sec(&self) -> f64 {
        let secs = self.measure.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.measure_accesses as f64 / secs
        }
    }

    /// Accumulates another run's profile (for scenario-level totals).
    pub fn merge(&mut self, other: &Self) {
        self.setup += other.setup;
        self.warmup += other.warmup;
        self.measure += other.measure;
        self.flush += other.flush;
        self.measure_accesses += other.measure_accesses;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_rate() {
        let p = PhaseProfile {
            setup: Duration::from_millis(5),
            warmup: Duration::from_millis(10),
            measure: Duration::from_millis(100),
            flush: Duration::from_millis(1),
            measure_accesses: 50_000,
        };
        assert_eq!(p.total(), Duration::from_millis(116));
        assert!((p.accesses_per_sec() - 500_000.0).abs() < 1.0);
    }

    #[test]
    fn empty_measure_window_has_zero_rate() {
        assert_eq!(PhaseProfile::default().accesses_per_sec(), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = PhaseProfile {
            setup: Duration::from_millis(1),
            measure_accesses: 10,
            ..PhaseProfile::default()
        };
        let b = PhaseProfile {
            setup: Duration::from_millis(2),
            measure: Duration::from_millis(3),
            measure_accesses: 20,
            ..PhaseProfile::default()
        };
        a.merge(&b);
        assert_eq!(a.setup, Duration::from_millis(3));
        assert_eq!(a.measure, Duration::from_millis(3));
        assert_eq!(a.measure_accesses, 30);
    }
}
