//! The unified metrics registry: typed metric values collected from every
//! `*Stats` struct under stable, prefix-scoped names.
//!
//! Naming scheme (documented in ARCHITECTURE.md): `snake_case`, counters
//! end in `_total`, histograms name their unit (`…_cycles`), and every
//! collector is handed a caller-chosen prefix (`engine_`, `cache_`,
//! `tlb_l2_`, …) so the same stats type can appear more than once in a
//! snapshot without colliding.

/// A point-in-time snapshot of a power-of-two histogram (the shape of
/// `WalkLatencyStats` in `asap-core`): bucket `i` counts samples in
/// `[2^i, 2^(i+1))`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub total: u64,
    /// Minimum sample (0 when empty).
    pub min: u64,
    /// Maximum sample.
    pub max: u64,
    /// Power-of-two bucket counts.
    pub buckets: Vec<u64>,
}

/// One metric's value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A monotonically accumulated count.
    Counter(u64),
    /// A point-in-time ratio or level.
    Gauge(f64),
    /// A distribution.
    Histogram(HistogramSnapshot),
}

/// One named metric.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Stable snake_case name (`engine_walks_total`, …).
    pub name: String,
    /// One-line human description.
    pub help: &'static str,
    /// The value.
    pub value: MetricValue,
}

/// An ordered collection of metrics; insertion order is emission order,
/// so snapshots are deterministic.
#[derive(Debug, Clone, Default)]
pub struct MetricSet {
    metrics: Vec<Metric>,
}

/// Anything that can contribute metrics to a snapshot. Implemented by the
/// workspace's stats structs in their owning crates.
pub trait Collect {
    /// Appends this value's metrics to `out`, each name starting with
    /// `prefix`.
    fn collect(&self, prefix: &str, out: &mut MetricSet);
}

impl MetricSet {
    /// Creates an empty set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a counter.
    pub fn counter(&mut self, name: impl Into<String>, help: &'static str, value: u64) {
        self.push(name.into(), help, MetricValue::Counter(value));
    }

    /// Registers a gauge.
    pub fn gauge(&mut self, name: impl Into<String>, help: &'static str, value: f64) {
        self.push(name.into(), help, MetricValue::Gauge(value));
    }

    /// Registers a histogram.
    pub fn histogram(
        &mut self,
        name: impl Into<String>,
        help: &'static str,
        value: HistogramSnapshot,
    ) {
        self.push(name.into(), help, MetricValue::Histogram(value));
    }

    fn push(&mut self, name: String, help: &'static str, value: MetricValue) {
        debug_assert!(self.get(&name).is_none(), "duplicate metric name: {name}");
        self.metrics.push(Metric { name, help, value });
    }

    /// Looks a metric up by exact name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&Metric> {
        self.metrics.iter().find(|m| m.name == name)
    }

    /// Number of metrics registered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Iterates metrics in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &Metric> {
        self.metrics.iter()
    }

    /// Emits the set as a JSON array (one object per metric, registration
    /// order), indented for embedding at `indent` spaces.
    #[must_use]
    pub fn to_json(&self, indent: usize) -> String {
        let pad = " ".repeat(indent);
        let mut s = String::from("[");
        for (i, m) in self.metrics.iter().enumerate() {
            s.push_str(if i == 0 { "\n" } else { ",\n" });
            s.push_str(&pad);
            s.push_str("  ");
            s.push_str(&metric_json(m));
        }
        if !self.metrics.is_empty() {
            s.push('\n');
            s.push_str(&pad);
        }
        s.push(']');
        s
    }
}

fn metric_json(m: &Metric) -> String {
    let head = format!(
        "{{\"name\": \"{}\", \"help\": \"{}\", ",
        escape(&m.name),
        escape(m.help)
    );
    match &m.value {
        MetricValue::Counter(v) => format!("{head}\"type\": \"counter\", \"value\": {v}}}"),
        MetricValue::Gauge(v) => format!("{head}\"type\": \"gauge\", \"value\": {v:.4}}}"),
        MetricValue::Histogram(h) => {
            let buckets: Vec<String> = h.buckets.iter().map(u64::to_string).collect();
            format!(
                "{head}\"type\": \"histogram\", \"count\": {}, \"total\": {}, \
                 \"min\": {}, \"max\": {}, \"buckets\": [{}]}}",
                h.count,
                h.total,
                h.min,
                h.max,
                buckets.join(", ")
            )
        }
    }
}

/// Escapes a string for JSON embedding.
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_order_and_lookup() {
        let mut set = MetricSet::new();
        set.counter("a_total", "a", 1);
        set.gauge("b_ratio", "b", 0.5);
        set.histogram(
            "c_cycles",
            "c",
            HistogramSnapshot {
                count: 2,
                total: 10,
                min: 4,
                max: 6,
                buckets: vec![0, 0, 2],
            },
        );
        assert_eq!(set.len(), 3);
        assert!(matches!(
            set.get("a_total").unwrap().value,
            MetricValue::Counter(1)
        ));
        let names: Vec<&str> = set.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, ["a_total", "b_ratio", "c_cycles"]);
    }

    #[test]
    fn json_shape() {
        let mut set = MetricSet::new();
        assert_eq!(set.to_json(0), "[]");
        set.counter("walks_total", "total walks", 42);
        set.gauge("accuracy", "hit ratio", 0.25);
        let json = set.to_json(2);
        assert!(json.starts_with("[\n    {\"name\": \"walks_total\""));
        assert!(json.contains("\"type\": \"counter\", \"value\": 42}"));
        assert!(json.contains("\"type\": \"gauge\", \"value\": 0.2500}"));
        assert!(json.ends_with("\n  ]"));
    }

    #[test]
    fn histogram_json_carries_buckets() {
        let mut set = MetricSet::new();
        set.histogram(
            "lat",
            "latency",
            HistogramSnapshot {
                count: 3,
                total: 30,
                min: 8,
                max: 12,
                buckets: vec![0, 1, 2],
            },
        );
        let json = set.to_json(0);
        assert!(json.contains("\"buckets\": [0, 1, 2]"));
        assert!(json.contains("\"count\": 3, \"total\": 30, \"min\": 8, \"max\": 12"));
    }

    #[test]
    fn escape_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }
}
