//! Observability for the ASAP simulator: a unified metrics registry, a
//! ring-buffer event tracer with a Chrome-trace (Perfetto) exporter, and a
//! simulator self-profile.
//!
//! The layer is *zero-cost when off*: engines hold an
//! `Option<Box<TraceSink>>` that is `None` unless a run explicitly asks
//! for tracing, so the recording hooks compile to a never-taken branch in
//! the default configuration. The committed `BENCH_results.json` numbers
//! are produced with telemetry disabled and must stay byte-identical —
//! CI asserts exactly that.
//!
//! Three concerns, three modules:
//!
//! - [`metrics`]: `Counter`/`Gauge`/`Histogram` values collected into a
//!   [`MetricSet`] via the [`Collect`] trait that every `*Stats` struct
//!   in the workspace implements (`asap run --metrics out.json`).
//! - [`trace`]: [`TraceSink`], a fixed-capacity ring buffer of
//!   [`TraceEvent`]s (TLB hits, walks, prefetches, MSHR merges, NUMA
//!   hops, scheduler arbitration) stamped in simulated cycles.
//! - [`chrome`]: the Chrome trace-event JSON emitter and its
//!   schema-directed parser (`asap run --trace out.json`, byte-identical
//!   round trip gated in CI).
//! - [`profile`]: [`PhaseProfile`], the per-run wall-clock split of the
//!   driver loop (setup / warmup / measure / stats-flush) behind
//!   `asap run --profile`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod metrics;
pub mod profile;
pub mod trace;

pub use chrome::{ArgValue, ChromeEvent, ParseError, Ph};
pub use metrics::{Collect, HistogramSnapshot, Metric, MetricSet, MetricValue};
pub use profile::PhaseProfile;
pub use trace::{CoreTrace, TraceEvent, TraceEventKind, TraceSink};

/// Which telemetry features a run has enabled. The default is everything
/// off — the zero-cost path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Record per-access trace events into ring buffers.
    pub trace: bool,
    /// Collect a metrics snapshot from every stats struct after the run.
    pub metrics: bool,
    /// Measure the wall-clock phase split of the driver loop.
    pub profile: bool,
}

impl TelemetryConfig {
    /// Everything disabled (the default; zero observer effect).
    #[must_use]
    pub fn off() -> Self {
        Self::default()
    }

    /// Whether any feature is enabled.
    #[must_use]
    pub fn any(self) -> bool {
        self.trace || self.metrics || self.profile
    }
}

/// Everything one run harvested: per-core event traces, the scheduler
/// arbitration track, a metrics snapshot, and the wall-clock profile.
/// Carried out of the driver alongside the `RunResult`s.
#[derive(Debug, Clone, Default)]
pub struct RunTelemetry {
    /// One trace per simulated core, in core order.
    pub cores: Vec<CoreTrace>,
    /// Scheduler arbitration events (event-queue pops/pushes); the
    /// `core` field of each event names the core that won arbitration.
    pub sched: Vec<TraceEvent>,
    /// The metrics snapshot (empty when metrics were not requested).
    pub metrics: MetricSet,
    /// The wall-clock phase split (when profiling was requested).
    pub profile: Option<PhaseProfile>,
}

impl RunTelemetry {
    /// Whether this carrier holds anything worth reporting.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cores.is_empty()
            && self.sched.is_empty()
            && self.metrics.is_empty()
            && self.profile.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_default_is_off() {
        let c = TelemetryConfig::off();
        assert!(!c.any());
        assert!(TelemetryConfig { profile: true, ..c }.any());
    }

    #[test]
    fn empty_run_telemetry() {
        assert!(RunTelemetry::default().is_empty());
        let t = RunTelemetry {
            sched: vec![TraceEvent {
                ts: 0,
                core: 0,
                kind: TraceEventKind::ArbPop,
            }],
            ..RunTelemetry::default()
        };
        assert!(!t.is_empty());
    }
}
