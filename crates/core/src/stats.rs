//! Walk statistics: latency distributions and the Fig. 9 served-by matrix.

use asap_cache::ServedBy;
use asap_types::PtLevel;

/// Where one page-walk request was served from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServedSource {
    /// The request was elided by a page-walk-cache hit.
    Pwc,
    /// Served by the given cache-hierarchy level.
    Cache(ServedBy),
    /// Merged with an in-flight ASAP prefetch sourced from the given level
    /// (latency partially hidden).
    Merged(ServedBy),
}

impl ServedSource {
    /// Report column index: PWC, L1, L2, LLC, Mem.
    #[must_use]
    pub fn column(self) -> usize {
        match self {
            ServedSource::Pwc => 0,
            ServedSource::Cache(l) | ServedSource::Merged(l) => match l {
                ServedBy::L1 => 1,
                ServedBy::L2 => 2,
                ServedBy::L3 => 3,
                ServedBy::Memory => 4,
            },
        }
    }

    /// Column headers matching [`ServedSource::column`].
    pub const COLUMNS: [&'static str; 5] = ["PWC", "L1", "L2", "LLC", "Mem"];
}

impl core::fmt::Display for ServedSource {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ServedSource::Pwc => f.write_str("PWC"),
            ServedSource::Cache(l) => write!(f, "{l}"),
            ServedSource::Merged(l) => write!(f, "{l}*"),
        }
    }
}

/// Counts of walk requests per (PT level, serving source) — the data behind
/// the paper's Figure 9.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServedByMatrix {
    /// `counts[level_depth - 1][column]`.
    counts: [[u64; 5]; 5],
}

impl ServedByMatrix {
    /// Creates an empty matrix.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one request.
    pub fn record(&mut self, level: PtLevel, source: ServedSource) {
        self.counts[(level.depth() - 1) as usize][source.column()] += 1;
    }

    /// Raw count for (level, column).
    #[must_use]
    pub fn count(&self, level: PtLevel, column: usize) -> u64 {
        self.counts[(level.depth() - 1) as usize][column]
    }

    /// Total requests recorded for `level`.
    #[must_use]
    pub fn total(&self, level: PtLevel) -> u64 {
        self.counts[(level.depth() - 1) as usize].iter().sum()
    }

    /// The per-column fractions for `level` (each row of Fig. 9).
    #[must_use]
    pub fn fractions(&self, level: PtLevel) -> [f64; 5] {
        let total = self.total(level);
        if total == 0 {
            return [0.0; 5];
        }
        let row = self.counts[(level.depth() - 1) as usize];
        core::array::from_fn(|i| row[i] as f64 / total as f64)
    }

    /// Merges another matrix into this one.
    pub fn merge(&mut self, other: &Self) {
        for (row, orow) in self.counts.iter_mut().zip(other.counts.iter()) {
            for (c, oc) in row.iter_mut().zip(orow.iter()) {
                *c += oc;
            }
        }
    }
}

/// Aggregate walk-latency statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WalkLatencyStats {
    count: u64,
    total_cycles: u64,
    min: u64,
    max: u64,
    /// Power-of-two latency histogram: bucket i counts walks with
    /// latency in `[2^i, 2^(i+1))`.
    buckets: [u64; 16],
}

impl WalkLatencyStats {
    /// Creates empty statistics.
    #[must_use]
    pub fn new() -> Self {
        Self {
            min: u64::MAX,
            ..Self::default()
        }
    }

    /// Records one walk.
    pub fn record(&mut self, latency: u64) {
        self.count += 1;
        self.total_cycles += latency;
        self.min = self.min.min(latency);
        self.max = self.max.max(latency);
        let bucket = (64 - latency.max(1).leading_zeros() - 1).min(15) as usize;
        self.buckets[bucket] += 1;
    }

    /// Number of walks recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Total walk cycles (the Fig. 11 numerator).
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.total_cycles
    }

    /// Mean walk latency in cycles (the Fig. 3/8/10/12 metric).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_cycles as f64 / self.count as f64
        }
    }

    /// Minimum observed latency (0 when empty).
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Maximum observed latency.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Approximate latency percentile from the power-of-two histogram
    /// (upper bucket bound; good enough for reporting tails).
    #[must_use]
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (self.count as f64 * p.clamp(0.0, 1.0)).ceil() as u64;
        let mut seen = 0;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                return 1 << (i + 1);
            }
        }
        self.max
    }

    /// Merges another set of statistics.
    pub fn merge(&mut self, other: &Self) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.total_cycles += other.total_cycles;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (b, ob) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += ob;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_fractions() {
        let mut m = ServedByMatrix::new();
        m.record(PtLevel::Pl1, ServedSource::Cache(ServedBy::Memory));
        m.record(PtLevel::Pl1, ServedSource::Cache(ServedBy::L1));
        m.record(PtLevel::Pl1, ServedSource::Merged(ServedBy::Memory));
        m.record(PtLevel::Pl4, ServedSource::Pwc);
        let f1 = m.fractions(PtLevel::Pl1);
        assert!((f1[1] - 1.0 / 3.0).abs() < 1e-12); // L1
        assert!((f1[4] - 2.0 / 3.0).abs() < 1e-12); // Mem (incl. merged)
        assert_eq!(m.fractions(PtLevel::Pl4)[0], 1.0);
        assert_eq!(m.fractions(PtLevel::Pl3), [0.0; 5]);
        assert_eq!(m.total(PtLevel::Pl1), 3);
    }

    #[test]
    fn matrix_merge() {
        let mut a = ServedByMatrix::new();
        a.record(PtLevel::Pl2, ServedSource::Pwc);
        let mut b = ServedByMatrix::new();
        b.record(PtLevel::Pl2, ServedSource::Pwc);
        b.record(PtLevel::Pl2, ServedSource::Cache(ServedBy::L2));
        a.merge(&b);
        assert_eq!(a.total(PtLevel::Pl2), 3);
        assert_eq!(a.count(PtLevel::Pl2, 0), 2);
    }

    #[test]
    fn latency_stats_basics() {
        let mut s = WalkLatencyStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0);
        for l in [10u64, 20, 30] {
            s.record(l);
        }
        assert_eq!(s.count(), 3);
        assert_eq!(s.total_cycles(), 60);
        assert!((s.mean() - 20.0).abs() < 1e-12);
        assert_eq!(s.min(), 10);
        assert_eq!(s.max(), 30);
    }

    #[test]
    fn latency_percentiles_monotone() {
        let mut s = WalkLatencyStats::new();
        for l in 1..=1000u64 {
            s.record(l);
        }
        let p50 = s.percentile(0.5);
        let p99 = s.percentile(0.99);
        assert!(p50 <= p99);
        assert!(p99 >= 512);
    }

    #[test]
    fn latency_merge() {
        let mut a = WalkLatencyStats::new();
        a.record(5);
        let mut b = WalkLatencyStats::new();
        b.record(100);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 5);
        assert_eq!(a.max(), 100);
        // Merging an empty never corrupts min.
        a.merge(&WalkLatencyStats::new());
        assert_eq!(a.min(), 5);
    }

    #[test]
    fn source_columns() {
        assert_eq!(ServedSource::Pwc.column(), 0);
        assert_eq!(ServedSource::Cache(ServedBy::L1).column(), 1);
        assert_eq!(ServedSource::Merged(ServedBy::Memory).column(), 4);
        assert_eq!(ServedSource::Merged(ServedBy::Memory).to_string(), "Mem*");
    }
}
