//! Walk statistics: latency distributions and the Fig. 9 served-by matrix.

use asap_cache::ServedBy;
use asap_telemetry::{Collect, HistogramSnapshot, MetricSet};
use asap_types::PtLevel;

/// Where one page-walk request was served from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServedSource {
    /// The request was elided by a page-walk-cache hit.
    Pwc,
    /// Served by the given cache-hierarchy level.
    Cache(ServedBy),
    /// Merged with an in-flight ASAP prefetch sourced from the given level
    /// (latency partially hidden).
    Merged(ServedBy),
}

impl ServedSource {
    /// Report column index: PWC, L1, L2, LLC, Mem.
    #[must_use]
    pub fn column(self) -> usize {
        match self {
            ServedSource::Pwc => 0,
            ServedSource::Cache(l) | ServedSource::Merged(l) => match l {
                ServedBy::L1 => 1,
                ServedBy::L2 => 2,
                ServedBy::L3 => 3,
                ServedBy::Memory => 4,
            },
        }
    }

    /// Column headers matching [`ServedSource::column`].
    pub const COLUMNS: [&'static str; 5] = ["PWC", "L1", "L2", "LLC", "Mem"];
}

impl core::fmt::Display for ServedSource {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ServedSource::Pwc => f.write_str("PWC"),
            ServedSource::Cache(l) => write!(f, "{l}"),
            ServedSource::Merged(l) => write!(f, "{l}*"),
        }
    }
}

/// Counts of walk requests per (PT level, serving source) — the data behind
/// the paper's Figure 9.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServedByMatrix {
    /// `counts[level_depth - 1][column]`.
    counts: [[u64; 5]; 5],
}

impl ServedByMatrix {
    /// Creates an empty matrix.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one request.
    pub fn record(&mut self, level: PtLevel, source: ServedSource) {
        self.counts[(level.depth() - 1) as usize][source.column()] += 1;
    }

    /// Raw count for (level, column).
    #[must_use]
    pub fn count(&self, level: PtLevel, column: usize) -> u64 {
        self.counts[(level.depth() - 1) as usize][column]
    }

    /// Total requests recorded for `level`.
    #[must_use]
    pub fn total(&self, level: PtLevel) -> u64 {
        self.counts[(level.depth() - 1) as usize].iter().sum()
    }

    /// The per-column fractions for `level` (each row of Fig. 9).
    #[must_use]
    pub fn fractions(&self, level: PtLevel) -> [f64; 5] {
        let total = self.total(level);
        if total == 0 {
            return [0.0; 5];
        }
        let row = self.counts[(level.depth() - 1) as usize];
        core::array::from_fn(|i| row[i] as f64 / total as f64)
    }

    /// Merges another matrix into this one.
    pub fn merge(&mut self, other: &Self) {
        for (row, orow) in self.counts.iter_mut().zip(other.counts.iter()) {
            for (c, oc) in row.iter_mut().zip(orow.iter()) {
                *c += oc;
            }
        }
    }

    /// The raw `counts[level_depth - 1][column]` grid, for byte-exact
    /// serialization (the result cache's codec).
    #[must_use]
    pub fn raw_counts(&self) -> &[[u64; 5]; 5] {
        &self.counts
    }

    /// Rebuilds a matrix from a raw grid produced by [`Self::raw_counts`].
    #[must_use]
    pub fn from_raw_counts(counts: [[u64; 5]; 5]) -> Self {
        Self { counts }
    }
}

impl Collect for ServedByMatrix {
    fn collect(&self, prefix: &str, out: &mut MetricSet) {
        // Only levels that saw requests get metrics: a 4-level run emits
        // no pl5 rows, a native run no host rows, keeping snapshots tight.
        for level in [
            PtLevel::Pl5,
            PtLevel::Pl4,
            PtLevel::Pl3,
            PtLevel::Pl2,
            PtLevel::Pl1,
        ] {
            if self.total(level) == 0 {
                continue;
            }
            let depth = level.depth();
            for (column, name) in ["pwc", "l1", "l2", "llc", "mem"].iter().enumerate() {
                out.counter(
                    format!("{prefix}served_pl{depth}_{name}_total"),
                    "walk requests served per (PT level, source)",
                    self.count(level, column),
                );
            }
        }
    }
}

/// Aggregate walk-latency statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WalkLatencyStats {
    count: u64,
    total_cycles: u64,
    min: u64,
    max: u64,
    /// Power-of-two latency histogram: bucket i counts walks with
    /// latency in `[2^i, 2^(i+1))`.
    buckets: [u64; 16],
}

impl WalkLatencyStats {
    /// Creates empty statistics.
    #[must_use]
    pub fn new() -> Self {
        Self {
            min: u64::MAX,
            ..Self::default()
        }
    }

    /// Records one walk.
    pub fn record(&mut self, latency: u64) {
        self.count += 1;
        self.total_cycles += latency;
        self.min = self.min.min(latency);
        self.max = self.max.max(latency);
        let bucket = (64 - latency.max(1).leading_zeros() - 1).min(15) as usize;
        self.buckets[bucket] += 1;
    }

    /// Number of walks recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Total walk cycles (the Fig. 11 numerator).
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.total_cycles
    }

    /// Mean walk latency in cycles (the Fig. 3/8/10/12 metric).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_cycles as f64 / self.count as f64
        }
    }

    /// Minimum observed latency (0 when empty).
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Maximum observed latency.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Approximate latency percentile from the power-of-two histogram
    /// (upper bucket bound; good enough for reporting tails).
    #[must_use]
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (self.count as f64 * p.clamp(0.0, 1.0)).ceil() as u64;
        let mut seen = 0;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                return 1 << (i + 1);
            }
        }
        self.max
    }

    /// The raw power-of-two bucket counts (bucket `i` covers
    /// `[2^i, 2^(i+1))`).
    #[must_use]
    pub fn buckets(&self) -> &[u64; 16] {
        &self.buckets
    }

    /// Rebuilds statistics from the raw parts reported by the accessors
    /// ([`Self::count`], [`Self::total_cycles`], [`Self::min`],
    /// [`Self::max`], [`Self::buckets`]), for byte-exact serialization.
    /// An empty set (`count == 0`) restores the internal `u64::MAX` min
    /// sentinel, so a round trip through the accessors is lossless:
    /// `from_raw` of an empty set's parts equals [`Self::new`].
    #[must_use]
    pub fn from_raw(count: u64, total_cycles: u64, min: u64, max: u64, buckets: [u64; 16]) -> Self {
        Self {
            count,
            total_cycles,
            min: if count == 0 { u64::MAX } else { min },
            max,
            buckets,
        }
    }

    /// Merges another set of statistics.
    pub fn merge(&mut self, other: &Self) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.total_cycles += other.total_cycles;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (b, ob) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += ob;
        }
    }
}

impl Collect for WalkLatencyStats {
    fn collect(&self, prefix: &str, out: &mut MetricSet) {
        out.histogram(
            format!("{prefix}latency_cycles"),
            "page-walk latency distribution (power-of-two buckets)",
            HistogramSnapshot {
                count: self.count(),
                total: self.total_cycles(),
                min: self.min(),
                max: self.max(),
                buckets: self.buckets().to_vec(),
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_fractions() {
        let mut m = ServedByMatrix::new();
        m.record(PtLevel::Pl1, ServedSource::Cache(ServedBy::Memory));
        m.record(PtLevel::Pl1, ServedSource::Cache(ServedBy::L1));
        m.record(PtLevel::Pl1, ServedSource::Merged(ServedBy::Memory));
        m.record(PtLevel::Pl4, ServedSource::Pwc);
        let f1 = m.fractions(PtLevel::Pl1);
        assert!((f1[1] - 1.0 / 3.0).abs() < 1e-12); // L1
        assert!((f1[4] - 2.0 / 3.0).abs() < 1e-12); // Mem (incl. merged)
        assert_eq!(m.fractions(PtLevel::Pl4)[0], 1.0);
        assert_eq!(m.fractions(PtLevel::Pl3), [0.0; 5]);
        assert_eq!(m.total(PtLevel::Pl1), 3);
    }

    #[test]
    fn matrix_merge() {
        let mut a = ServedByMatrix::new();
        a.record(PtLevel::Pl2, ServedSource::Pwc);
        let mut b = ServedByMatrix::new();
        b.record(PtLevel::Pl2, ServedSource::Pwc);
        b.record(PtLevel::Pl2, ServedSource::Cache(ServedBy::L2));
        a.merge(&b);
        assert_eq!(a.total(PtLevel::Pl2), 3);
        assert_eq!(a.count(PtLevel::Pl2, 0), 2);
    }

    #[test]
    fn latency_stats_basics() {
        let mut s = WalkLatencyStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0);
        for l in [10u64, 20, 30] {
            s.record(l);
        }
        assert_eq!(s.count(), 3);
        assert_eq!(s.total_cycles(), 60);
        assert!((s.mean() - 20.0).abs() < 1e-12);
        assert_eq!(s.min(), 10);
        assert_eq!(s.max(), 30);
    }

    #[test]
    fn latency_percentiles_monotone() {
        let mut s = WalkLatencyStats::new();
        for l in 1..=1000u64 {
            s.record(l);
        }
        let p50 = s.percentile(0.5);
        let p99 = s.percentile(0.99);
        assert!(p50 <= p99);
        assert!(p99 >= 512);
    }

    #[test]
    fn latency_merge() {
        let mut a = WalkLatencyStats::new();
        a.record(5);
        let mut b = WalkLatencyStats::new();
        b.record(100);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 5);
        assert_eq!(a.max(), 100);
        // Merging an empty never corrupts min.
        a.merge(&WalkLatencyStats::new());
        assert_eq!(a.min(), 5);
    }

    #[test]
    fn raw_roundtrip_is_lossless() {
        let mut s = WalkLatencyStats::new();
        for l in [7u64, 300, 12] {
            s.record(l);
        }
        let back =
            WalkLatencyStats::from_raw(s.count(), s.total_cycles(), s.min(), s.max(), *s.buckets());
        assert_eq!(back, s);

        // The empty case: the accessor reports min = 0, from_raw restores
        // the u64::MAX sentinel so future merges stay correct.
        let empty = WalkLatencyStats::new();
        let back = WalkLatencyStats::from_raw(0, 0, empty.min(), 0, [0; 16]);
        assert_eq!(back, empty);
        let mut merged = back;
        merged.record(9);
        assert_eq!(merged.min(), 9);

        let mut m = ServedByMatrix::new();
        m.record(PtLevel::Pl3, ServedSource::Pwc);
        assert_eq!(ServedByMatrix::from_raw_counts(*m.raw_counts()), m);
    }

    #[test]
    fn source_columns() {
        assert_eq!(ServedSource::Pwc.column(), 0);
        assert_eq!(ServedSource::Cache(ServedBy::L1).column(), 1);
        assert_eq!(ServedSource::Merged(ServedBy::Memory).column(), 4);
        assert_eq!(ServedSource::Merged(ServedBy::Memory).to_string(), "Mem*");
    }

    #[test]
    fn percentile_of_empty_histogram_is_zero() {
        let s = WalkLatencyStats::new();
        assert_eq!(s.percentile(0.0), 0);
        assert_eq!(s.percentile(0.5), 0);
        assert_eq!(s.percentile(1.0), 0);
    }

    #[test]
    fn percentile_extremes_on_a_single_bucket() {
        // All samples land in bucket 6 ([64, 128)); every percentile —
        // including the degenerate p=0.0, whose ceil-target of 0 is
        // satisfied by the first bucket scanned with `seen >= target` —
        // reports that bucket's upper bound.
        let mut s = WalkLatencyStats::new();
        for _ in 0..10 {
            s.record(100);
        }
        assert_eq!(s.percentile(1.0), 128);
        assert_eq!(s.percentile(0.5), 128);
        assert_eq!(s.percentile(0.0), 2, "p=0 hits the first bucket bound");
        // Out-of-range p clamps rather than panicking or overshooting.
        assert_eq!(s.percentile(-1.0), s.percentile(0.0));
        assert_eq!(s.percentile(2.0), s.percentile(1.0));
    }

    #[test]
    fn percentile_p1_spans_to_the_top_bucket() {
        let mut s = WalkLatencyStats::new();
        s.record(3); // bucket 1: [2, 4)
        s.record(1000); // bucket 9: [512, 1024)
        assert_eq!(s.percentile(0.5), 4);
        assert_eq!(s.percentile(1.0), 1024);
        // A sample beyond the last bucket range still lands in bucket 15,
        // so the reported tail is that bucket's upper bound.
        s.record(1 << 20);
        assert_eq!(s.percentile(1.0), 1 << 16);
    }

    #[test]
    fn collect_emits_histogram_and_served_rows() {
        use asap_telemetry::MetricValue;
        let mut s = WalkLatencyStats::new();
        s.record(100);
        let mut out = MetricSet::new();
        s.collect("walk_", &mut out);
        let m = out.get("walk_latency_cycles").expect("registered");
        match &m.value {
            MetricValue::Histogram(h) => {
                assert_eq!(h.count, 1);
                assert_eq!(h.total, 100);
                assert_eq!(h.buckets.len(), 16);
                assert_eq!(h.buckets[6], 1);
            }
            other => panic!("expected histogram, got {other:?}"),
        }

        let mut matrix = ServedByMatrix::new();
        matrix.record(PtLevel::Pl2, ServedSource::Merged(ServedBy::Memory));
        let mut out = MetricSet::new();
        matrix.collect("engine_", &mut out);
        assert!(out.get("engine_served_pl2_mem_total").is_some());
        assert!(
            out.get("engine_served_pl1_mem_total").is_none(),
            "levels without requests stay out of the snapshot"
        );
    }
}
