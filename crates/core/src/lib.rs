//! ASAP — Address Translation with Prefetching (the paper's contribution).
//!
//! On every TLB miss, ASAP checks the faulting virtual address against a
//! small file of architecturally-exposed **range registers** holding per-VMA
//! descriptors (Fig. 6). On a hit it computes, with pure base-plus-offset
//! arithmetic, the physical addresses of the PL1/PL2 page-table nodes that
//! the walk will eventually read — possible because the OS keeps those
//! levels physically contiguous and sorted by virtual address — and issues
//! best-effort prefetches for them. The conventional page walk still runs
//! and validates everything; the prefetches only *overlap* its long-latency
//! accesses (Fig. 4b), typically exposing a single access to the memory
//! hierarchy per walk.
//!
//! This crate composes the substrates into the two machines the paper
//! evaluates, both implementing the [`TranslationEngine`] trait over a
//! shared engine core (TLB fast path, hierarchy clock, prefetch issue,
//! walk accounting):
//!
//! * [`Mmu`] — native translation: L1/L2 TLBs → split PWCs → hardware walk
//!   over the cache hierarchy, with the ASAP prefetcher attached; optional
//!   clustered TLB (§5.4.1);
//! * [`NestedMmu`] — virtualized translation: the 24-access 2D walk of
//!   Fig. 7 with dedicated guest/host PWCs and ASAP applied per dimension
//!   (`P1g`, `P2g`, `P1h`, `P2h`).
//!
//! The [`TranslationEngine`]/[`SimMachine`] pair is what the simulation
//! driver in `asap-sim` speaks, so new translation backends drop in
//! without touching the driver loop.
//!
//! # Examples
//!
//! ```
//! use asap_core::{AsapHwConfig, Mmu, MmuConfig, TranslationPath};
//! use asap_os::{AsapOsConfig, Process, ProcessConfig, VmaKind};
//! use asap_types::{Asid, ByteSize};
//!
//! let mut process = Process::new(ProcessConfig::new(Asid(1))
//!     .with_heap(ByteSize::mib(64))
//!     .with_asap(AsapOsConfig::pl1_and_pl2()));
//! let va = process.vma_of_kind(VmaKind::Heap).unwrap().start();
//! process.touch(va).unwrap();
//!
//! let mut mmu = Mmu::new(MmuConfig::default().with_asap(AsapHwConfig::p1_p2()));
//! mmu.load_context(process.vma_descriptors());
//!
//! let out = mmu.translate(process.mem(), process.page_table(), process.asid(), va, None);
//! assert!(matches!(out.path, TranslationPath::Walk));
//! let walk = out.walk.unwrap();
//! assert!(walk.prefetches_issued > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
mod config;
mod engine;
mod mmu;
mod nested_mmu;
mod prefetcher;
mod range_regs;
mod stats;

pub use cluster::ClusterSource;
pub use config::{AsapHwConfig, MmuConfig, NestedAsapConfig, NestedMmuConfig};
pub use engine::{
    EngineCore, EngineOutcome, EngineStats, SimMachine, TranslationEngine, TranslationPath,
    L2_TLB_HIT_CYCLES,
};
pub use mmu::{AccessOutcome, Mmu, WalkReport, WalkSources};
pub use nested_mmu::{NestedAccessOutcome, NestedMmu, NestedPath, NestedWalkReport};
pub use prefetcher::prefetch_target;
pub use range_regs::RangeRegisterFile;
pub use stats::{ServedByMatrix, ServedSource, WalkLatencyStats};
