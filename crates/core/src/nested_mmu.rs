//! The virtualized MMU: 2D walks with per-dimension ASAP (Fig. 7).

use crate::engine::{EngineCore, EngineOutcome, EngineStats, TranslationEngine, TranslationPath};
use crate::{NestedAsapConfig, NestedMmuConfig, RangeRegisterFile, ServedByMatrix, ServedSource};
use asap_os::VmaDescriptor;
use asap_tlb::{PageWalkCaches, TlbEntry, TlbLevel};
use asap_types::{Asid, PhysAddr, PtLevel, VirtAddr};
use asap_virt::{Dim, VirtualMachine};

/// ASID used to tag host-dimension structures (one VM per core in the
/// evaluated scenarios).
const HOST_ASID: Asid = Asid(u16::MAX);

/// How a virtualized translation was resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NestedPath {
    /// L1 TLB hit (gVA → hPA cached).
    TlbL1,
    /// L2 TLB hit.
    TlbL2,
    /// Full 2D walk.
    Walk,
}

/// Details of one 2D walk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NestedWalkReport {
    /// 2D-walk latency in cycles.
    pub latency: u64,
    /// Hierarchy accesses actually performed (≤ 24; PWC hits elide some).
    pub accesses: u32,
    /// Prefetches issued (guest + host dimensions).
    pub prefetches_issued: u8,
    /// Prefetches dropped for lack of an MSHR.
    pub prefetches_dropped: u8,
    /// Whether the walk faulted in either dimension.
    pub fault: bool,
}

/// Outcome of one virtualized translation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NestedAccessOutcome {
    /// How it was served.
    pub path: NestedPath,
    /// Translation latency in cycles.
    pub latency: u64,
    /// Final host-physical address (`None` on fault).
    pub hpa: Option<PhysAddr>,
    /// Walk details when `path == Walk`.
    pub walk: Option<NestedWalkReport>,
}

/// The virtualized translation machine: nested TLBs, one PWC per dimension,
/// and ASAP range registers for both dimensions. The host dimension needs
/// only a single descriptor because the whole guest is one host VMA (§3.6).
/// The TLB fast path, hierarchy clock and walk accounting live in the
/// shared `EngineCore`.
#[derive(Debug)]
pub struct NestedMmu {
    core: EngineCore,
    asap: NestedAsapConfig,
    gpwc: PageWalkCaches,
    hpwc: PageWalkCaches,
    guest_regs: RangeRegisterFile,
    host_desc: Option<VmaDescriptor>,
    guest_served: ServedByMatrix,
    host_served: ServedByMatrix,
}

impl NestedMmu {
    /// Builds the nested MMU from `config`.
    #[must_use]
    pub fn new(config: NestedMmuConfig) -> Self {
        let NestedMmuConfig {
            l1_tlb,
            l2_tlb,
            guest_pwc,
            host_pwc,
            hierarchy,
            asap,
            range_registers,
            seed,
        } = config;
        Self {
            core: EngineCore::new(l1_tlb, l2_tlb, hierarchy, seed),
            gpwc: PageWalkCaches::new(guest_pwc, seed ^ 0x61),
            hpwc: PageWalkCaches::new(host_pwc, seed ^ 0x62),
            guest_regs: RangeRegisterFile::new(range_registers),
            host_desc: None,
            asap,
            guest_served: ServedByMatrix::new(),
            host_served: ServedByMatrix::new(),
        }
    }

    /// Loads both dimensions' range registers from the VM's OS/hypervisor
    /// state.
    pub fn load_context(&mut self, vm: &VirtualMachine) {
        self.guest_regs.load_context(vm.guest_descriptors());
        let pl1 = vm.host_region_base(PtLevel::Pl1);
        let pl2 = vm.host_region_base(PtLevel::Pl2);
        self.host_desc = if pl1.is_some() || pl2.is_some() {
            Some(VmaDescriptor {
                start: VirtAddr::new_unchecked(0),
                // The single host VMA spans the whole guest-physical space.
                end: VirtAddr::new_unchecked(1 << 47),
                pl1_base: pl1,
                pl2_base: pl2,
            })
        } else {
            None
        };
    }

    /// Translates guest-virtual `va`, simulating the 2D walk of Fig. 7 with
    /// the configured per-dimension prefetching.
    pub fn translate(&mut self, vm: &mut VirtualMachine, va: VirtAddr) -> NestedAccessOutcome {
        let asid = vm.guest().asid();
        let vpn = va.page_number();
        if let Some((level, latency, entry)) = self.core.tlb_lookup(asid, vpn) {
            let path = match level {
                TlbLevel::L1 => NestedPath::TlbL1,
                TlbLevel::L2 => NestedPath::TlbL2,
            };
            return NestedAccessOutcome {
                path,
                latency,
                hpa: Some(entry.phys_addr(va)),
                walk: None,
            };
        }
        let trace = vm.nested_walk(va);
        let t0 = self.core.now();
        let mut issued = 0u8;
        let mut dropped = 0u8;

        // Guest-dimension prefetches launch at 2D-walk start: the gPT
        // node addresses are computable immediately, and the vmcall
        // contiguity guarantee (§3.6) makes the descriptor bases valid
        // host-physical targets.
        if !self.asap.guest.is_empty() {
            if let Some(desc) = self.guest_regs.lookup(va).copied() {
                self.core.issue_prefetches(
                    &desc,
                    &self.asap.guest,
                    va,
                    t0,
                    &mut issued,
                    &mut dropped,
                );
            }
        }

        // Guest PWC: a hit at depth d elides every guest node above the
        // resume level *and* the host 1D walks serving them.
        let g_hit = self.gpwc.lookup(asid, va);
        let g_start = g_hit.map_or(PtLevel::Pl4, |h| h.next_level);
        let mut t = t0 + self.gpwc.latency();
        let mut accesses = 0u32;

        // Process the trace as (host 1D walk, guest node read) segments in
        // Fig. 7 order, then the final data walk.
        let mut i = 0;
        while i < trace.steps.len() {
            let seg_guest_level = trace.steps[i].for_guest_level;
            // Collect this segment (all steps sharing for_guest_level).
            let seg_start = i;
            while i < trace.steps.len() && trace.steps[i].for_guest_level == seg_guest_level {
                i += 1;
            }
            let segment = &trace.steps[seg_start..i];
            // Skip segments whose guest level the gPWC covered.
            if let Some(gl) = seg_guest_level {
                if gl.depth() > g_start.depth() {
                    self.guest_served.record(gl, ServedSource::Pwc);
                    continue;
                }
            }
            let gpa = segment[0].translating_gpa;
            // Host-dimension prefetches for this 1D walk, issued as it
            // starts ("using the guest physical address", §3.6).
            let gpa_va = VirtAddr::new_unchecked(gpa.raw());
            if !self.asap.host.is_empty() {
                if let Some(host_desc) = self.host_desc {
                    self.core.issue_prefetches(
                        &host_desc,
                        &self.asap.host,
                        gpa_va,
                        t,
                        &mut issued,
                        &mut dropped,
                    );
                }
            }
            // Host PWC probe for this 1D walk.
            let h_hit = self.hpwc.lookup(HOST_ASID, gpa_va);
            let h_start = h_hit.map_or(PtLevel::Pl4, |h| h.next_level);
            t += self.hpwc.latency();
            for step in segment {
                match step.dim {
                    Dim::Host => {
                        if step.level.depth() > h_start.depth() {
                            self.host_served.record(step.level, ServedSource::Pwc);
                            continue;
                        }
                        let src = self
                            .core
                            .walk_access(step.host_entry_addr.cache_line(), &mut t);
                        accesses += 1;
                        self.host_served.record(step.level, src);
                        // Fill the host PWC with intermediate entries.
                        if step.level != PtLevel::Pl1
                            && step.entry.is_present()
                            && !step.entry.is_large_leaf()
                        {
                            self.hpwc
                                .fill(HOST_ASID, gpa_va, step.level, step.entry.frame());
                        }
                    }
                    Dim::Guest => {
                        let src = self
                            .core
                            .walk_access(step.host_entry_addr.cache_line(), &mut t);
                        accesses += 1;
                        self.guest_served.record(step.level, src);
                        // Fill the guest PWC with intermediate gPT entries.
                        if step.level != PtLevel::Pl1
                            && step.entry.is_present()
                            && !step.entry.is_large_leaf()
                        {
                            self.gpwc.fill(asid, va, step.level, step.entry.frame());
                        }
                    }
                }
            }
        }
        let latency = self.core.finish_walk(t0, t);

        let fault = !trace.is_mapped();
        let hpa = trace.data_hpa();
        if let (Some(guest_t), Some(data_hpa)) = (trace.guest_translation(), hpa) {
            // Install gVA → hPA: the entry frame is the host frame of the
            // page base.
            let base = data_hpa.raw() & !(guest_t.size.bytes() - 1);
            let entry = TlbEntry::new(PhysAddr::new(base).frame_number(), guest_t.size);
            self.core.tlbs.fill(asid, vpn, entry);
        } else {
            self.core.walk_faults += 1;
        }
        NestedAccessOutcome {
            path: NestedPath::Walk,
            latency,
            hpa,
            walk: Some(NestedWalkReport {
                latency,
                accesses,
                prefetches_issued: issued,
                prefetches_dropped: dropped,
                fault,
            }),
        }
    }

    /// A demand data access in the guest (advances the clock).
    pub fn data_access(&mut self, hpa: PhysAddr) -> asap_cache::AccessResult {
        self.core.data_access(hpa)
    }

    /// Cache pressure from the SMT co-runner (does not consume cycles).
    pub fn corunner_access(&mut self, line: asap_types::CacheLineAddr) {
        self.core.corunner_access(line);
    }

    /// Walk-latency statistics (Fig. 10/12 metric).
    #[must_use]
    pub fn walk_stats(&self) -> &crate::WalkLatencyStats {
        &self.core.walk_stats
    }

    /// Guest-dimension served-by matrix.
    #[must_use]
    pub fn guest_served_matrix(&self) -> &ServedByMatrix {
        &self.guest_served
    }

    /// Host-dimension served-by matrix.
    #[must_use]
    pub fn host_served_matrix(&self) -> &ServedByMatrix {
        &self.host_served
    }

    /// L2 TLB statistics.
    #[must_use]
    pub fn l2_tlb_stats(&self) -> &asap_tlb::TlbStats {
        self.core.tlbs.l2_stats()
    }

    /// Walks that faulted.
    #[must_use]
    pub fn walk_faults(&self) -> u64 {
        self.core.walk_faults
    }

    /// Current cycle count.
    #[must_use]
    pub fn now(&self) -> u64 {
        self.core.now()
    }

    /// Advances the clock.
    pub fn advance(&mut self, cycles: u64) {
        self.core.advance(cycles);
    }

    /// Resets statistics, keeping state warm.
    pub fn reset_stats(&mut self) {
        self.core.reset_stats();
        self.guest_served = ServedByMatrix::new();
        self.host_served = ServedByMatrix::new();
        self.gpwc.reset_stats();
        self.hpwc.reset_stats();
        self.guest_regs.reset_stats();
    }
}

impl TranslationEngine for NestedMmu {
    type Machine = VirtualMachine;

    fn load_context(&mut self, machine: &VirtualMachine) {
        NestedMmu::load_context(self, machine);
    }

    fn translate_access(&mut self, machine: &mut VirtualMachine, va: VirtAddr) -> EngineOutcome {
        let out = self.translate(machine, va);
        let path = match out.path {
            NestedPath::TlbL1 => TranslationPath::TlbL1,
            NestedPath::TlbL2 => TranslationPath::TlbL2,
            NestedPath::Walk => TranslationPath::Walk,
        };
        EngineOutcome {
            path,
            latency: out.latency,
            phys: out.hpa,
            prefetches_issued: out.walk.as_ref().map_or(0, |w| w.prefetches_issued),
            prefetches_dropped: out.walk.as_ref().map_or(0, |w| w.prefetches_dropped),
        }
    }

    fn data_access(&mut self, pa: PhysAddr) -> asap_cache::AccessResult {
        NestedMmu::data_access(self, pa)
    }

    fn corunner_access(&mut self, line: asap_types::CacheLineAddr) {
        NestedMmu::corunner_access(self, line);
    }

    fn now(&self) -> u64 {
        NestedMmu::now(self)
    }

    fn advance(&mut self, cycles: u64) {
        NestedMmu::advance(self, cycles);
    }

    fn reset_stats(&mut self) {
        NestedMmu::reset_stats(self);
    }

    fn stats_snapshot(&self) -> EngineStats {
        EngineStats {
            walks: self.core.walk_stats.clone(),
            served: self.guest_served,
            host_served: Some(self.host_served),
            l2_tlb: *self.core.tlbs.l2_stats(),
            walk_faults: self.core.walk_faults,
        }
    }

    fn set_tracer(&mut self, sink: asap_telemetry::TraceSink) {
        self.core.set_tracer(sink);
    }

    fn take_tracer(&mut self) -> Option<asap_telemetry::TraceSink> {
        self.core.take_tracer()
    }

    fn collect_metrics(&self, prefix: &str, out: &mut asap_telemetry::MetricSet) {
        use asap_telemetry::Collect;
        self.stats_snapshot().collect(prefix, out);
        self.core.collect_fabric_metrics(prefix, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asap_os::{AsapOsConfig, ProcessConfig, VmaKind};
    use asap_types::{Asid, ByteSize};
    use asap_virt::EptConfig;

    fn vm(guest_asap: AsapOsConfig, ept: EptConfig) -> VirtualMachine {
        let mut vm = VirtualMachine::new(
            ProcessConfig::new(Asid(1))
                .with_heap(ByteSize::mib(128))
                .with_asap(guest_asap)
                .with_compact_phys()
                .with_pt_scatter_run(1.0)
                .with_seed(21),
            ept,
        );
        let va = vm.guest().vma_of_kind(VmaKind::Heap).unwrap().start();
        vm.touch(va).unwrap();
        vm
    }

    fn heap_va(vm: &VirtualMachine) -> VirtAddr {
        vm.guest().vma_of_kind(VmaKind::Heap).unwrap().start()
    }

    #[test]
    fn cold_2d_walk_then_tlb_hit() {
        let mut vm = vm(AsapOsConfig::disabled(), EptConfig::default());
        let va = heap_va(&vm);
        let mut mmu = NestedMmu::new(NestedMmuConfig::default());
        mmu.load_context(&vm);
        let first = mmu.translate(&mut vm, va);
        assert_eq!(first.path, NestedPath::Walk);
        let walk = first.walk.unwrap();
        // Up to 24 accesses (Fig. 7); the host PWC warms up *within* the
        // walk (the gPT node pages share upper host-PT levels), eliding a
        // few of the later host steps even on a cold machine.
        assert!(
            (15..=24).contains(&walk.accesses),
            "accesses = {}",
            walk.accesses
        );
        // Cold: most accesses come from memory, serialized (later steps may
        // hit lines fetched by earlier steps of the same walk — e.g. shared
        // upper host-PT nodes).
        assert!(walk.latency >= 10 * 191, "latency = {}", walk.latency);
        let second = mmu.translate(&mut vm, va);
        assert_eq!(second.path, NestedPath::TlbL1);
        assert_eq!(second.hpa, first.hpa);
    }

    #[test]
    fn virtualized_walks_cost_more_than_native() {
        // The headline Fig. 3 shape: nested baseline ≈ several × native.
        let mut vm = vm(AsapOsConfig::disabled(), EptConfig::default());
        let va = heap_va(&vm);
        let mut nested = NestedMmu::new(NestedMmuConfig::default());
        nested.load_context(&vm);
        let nested_out = nested.translate(&mut vm, va);
        let mut native = crate::Mmu::new(crate::MmuConfig::default());
        let native_out = native.translate(
            vm.guest().mem(),
            vm.guest().page_table(),
            vm.guest().asid(),
            va,
            None,
        );
        assert!(nested_out.latency > 3 * native_out.latency);
    }

    #[test]
    fn guest_pwc_elides_host_walks() {
        let mut vm = vm(AsapOsConfig::disabled(), EptConfig::default());
        let a = heap_va(&vm);
        let b = VirtAddr::new(a.raw() + 0x1000).unwrap();
        vm.touch(b).unwrap();
        let mut mmu = NestedMmu::new(NestedMmuConfig::default());
        mmu.load_context(&vm);
        let _ = mmu.translate(&mut vm, a);
        let out = mmu.translate(&mut vm, b);
        let walk = out.walk.unwrap();
        // gPWC hit at gPL2: only the gPL1 segment (host walk + node read)
        // and the final data walk remain = at most 4 + 1 + 4 accesses, and
        // the host PWC trims the host walks further.
        assert!(walk.accesses <= 9, "accesses = {}", walk.accesses);
    }

    #[test]
    fn full_asap_beats_nested_baseline_cold() {
        let mk = |ept: EptConfig, guest_asap| vm(guest_asap, ept);
        // Baseline.
        let mut vm_b = mk(EptConfig::default(), AsapOsConfig::disabled());
        let mut base = NestedMmu::new(NestedMmuConfig::default());
        base.load_context(&vm_b);
        let va = heap_va(&vm_b);
        let b = base.translate(&mut vm_b, va);
        // Full ASAP (OS + hypervisor + hardware).
        let mut vm_a = mk(
            EptConfig::default().host_pl1_and_pl2(),
            AsapOsConfig::pl1_and_pl2(),
        );
        let mut asap =
            NestedMmu::new(NestedMmuConfig::default().with_asap(NestedAsapConfig::all()));
        asap.load_context(&vm_a);
        let va_a = heap_va(&vm_a);
        let a = asap.translate(&mut vm_a, va_a);
        assert!(a.walk.as_ref().unwrap().prefetches_issued > 0);
        assert!(
            a.latency < b.latency,
            "ASAP {} !< baseline {}",
            a.latency,
            b.latency
        );
    }

    #[test]
    fn asap_preserves_translations_under_virtualization() {
        let mut vm_a = vm(
            AsapOsConfig::pl1_and_pl2(),
            EptConfig::default().host_pl1_and_pl2(),
        );
        let heap = heap_va(&vm_a);
        let vas: Vec<VirtAddr> = (0..16)
            .map(|i| VirtAddr::new(heap.raw() + i * 0x3000).unwrap())
            .collect();
        for va in &vas {
            vm_a.touch(*va).unwrap();
        }
        let mut base = NestedMmu::new(NestedMmuConfig::default());
        base.load_context(&vm_a);
        let mut asap =
            NestedMmu::new(NestedMmuConfig::default().with_asap(NestedAsapConfig::all()));
        asap.load_context(&vm_a);
        for va in &vas {
            let b = base.translate(&mut vm_a, *va);
            let a = asap.translate(&mut vm_a, *va);
            assert_eq!(b.hpa, a.hpa);
        }
    }

    #[test]
    fn host_2m_pages_shorten_walks() {
        let mut vm4k = vm(AsapOsConfig::disabled(), EptConfig::default());
        let mut mmu4k = NestedMmu::new(NestedMmuConfig::default());
        mmu4k.load_context(&vm4k);
        let va = heap_va(&vm4k);
        let out4k = mmu4k.translate(&mut vm4k, va);

        let mut vm2m = vm(
            AsapOsConfig::disabled(),
            EptConfig::default().host_2m_pages(),
        );
        let mut mmu2m = NestedMmu::new(NestedMmuConfig::default());
        mmu2m.load_context(&vm2m);
        let va2 = heap_va(&vm2m);
        let out2m = mmu2m.translate(&mut vm2m, va2);
        assert!(out2m.walk.as_ref().unwrap().accesses < out4k.walk.as_ref().unwrap().accesses);
        assert!(out2m.latency < out4k.latency);
    }

    #[test]
    fn engine_trait_exposes_host_dimension() {
        let mut vm_t = vm(AsapOsConfig::disabled(), EptConfig::default());
        let va = heap_va(&vm_t);
        let mut mmu = NestedMmu::new(NestedMmuConfig::default());
        TranslationEngine::load_context(&mut mmu, &vm_t);
        let out = mmu.translate_access(&mut vm_t, va);
        assert_eq!(out.path, TranslationPath::Walk);
        assert!(out.phys.is_some());
        let snap = mmu.stats_snapshot();
        assert_eq!(snap.walks.count(), 1);
        assert!(snap.host_served.is_some());
    }
}
