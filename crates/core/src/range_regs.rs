//! The architecturally-exposed range-register file (Fig. 6).

use asap_os::VmaDescriptor;

/// The per-hardware-thread file of VMA descriptors.
///
/// Each TLB miss is checked against every register in parallel; a hit
/// yields the descriptor whose base addresses feed the prefetch
/// computation. The OS loads the file on context switches (§3.4).
///
/// # Examples
///
/// ```
/// use asap_core::RangeRegisterFile;
/// use asap_os::VmaDescriptor;
/// use asap_types::{PhysAddr, VirtAddr};
///
/// let mut regs = RangeRegisterFile::new(16);
/// regs.load_context(&[VmaDescriptor {
///     start: VirtAddr::new(0x1000).unwrap(),
///     end: VirtAddr::new(0x9000).unwrap(),
///     pl1_base: Some(PhysAddr::new(0x100_000)),
///     pl2_base: None,
/// }]);
/// assert!(regs.lookup(VirtAddr::new(0x4000).unwrap()).is_some());
/// assert!(regs.lookup(VirtAddr::new(0x9000).unwrap()).is_none());
/// ```
#[derive(Debug, Clone, Default)]
pub struct RangeRegisterFile {
    registers: Vec<VmaDescriptor>,
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl RangeRegisterFile {
    /// Creates an empty file with `capacity` registers.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            registers: Vec::with_capacity(capacity),
            capacity,
            hits: 0,
            misses: 0,
        }
    }

    /// Loads descriptors on a context switch, truncating to capacity
    /// (the OS is expected to order them by importance, §3.4).
    pub fn load_context(&mut self, descriptors: &[VmaDescriptor]) {
        self.registers.clear();
        self.registers
            .extend(descriptors.iter().take(self.capacity).copied());
    }

    /// Matches `va` against all registers (hardware does this in parallel;
    /// VMAs never overlap, so at most one matches).
    pub fn lookup(&mut self, va: asap_types::VirtAddr) -> Option<&VmaDescriptor> {
        let hit = self.registers.iter().find(|d| d.covers(va));
        if hit.is_some() {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        hit
    }

    /// Number of loaded registers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.registers.len()
    }

    /// Whether no descriptors are loaded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.registers.is_empty()
    }

    /// Register capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lookup hits (TLB misses inside a tracked VMA).
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookup misses (TLB misses outside every tracked VMA — walks ASAP
    /// cannot accelerate).
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Resets hit/miss counters (post-warmup).
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asap_types::{PhysAddr, VirtAddr};

    fn desc(start: u64, end: u64) -> VmaDescriptor {
        VmaDescriptor {
            start: VirtAddr::new(start).unwrap(),
            end: VirtAddr::new(end).unwrap(),
            pl1_base: Some(PhysAddr::new(0x1000_0000)),
            pl2_base: None,
        }
    }

    #[test]
    fn capacity_truncation() {
        let mut regs = RangeRegisterFile::new(2);
        regs.load_context(&[
            desc(0x1000, 0x2000),
            desc(0x3000, 0x4000),
            desc(0x5000, 0x6000),
        ]);
        assert_eq!(regs.len(), 2);
        assert!(regs.lookup(VirtAddr::new(0x1000).unwrap()).is_some());
        assert!(regs.lookup(VirtAddr::new(0x5000).unwrap()).is_none());
    }

    #[test]
    fn reload_replaces() {
        let mut regs = RangeRegisterFile::new(4);
        regs.load_context(&[desc(0x1000, 0x2000)]);
        regs.load_context(&[desc(0x8000, 0x9000)]);
        assert!(regs.lookup(VirtAddr::new(0x1000).unwrap()).is_none());
        assert!(regs.lookup(VirtAddr::new(0x8000).unwrap()).is_some());
    }

    #[test]
    fn stats_count() {
        let mut regs = RangeRegisterFile::new(4);
        regs.load_context(&[desc(0x1000, 0x2000)]);
        let _ = regs.lookup(VirtAddr::new(0x1500).unwrap());
        let _ = regs.lookup(VirtAddr::new(0x9999).unwrap());
        assert_eq!((regs.hits(), regs.misses()), (1, 1));
        regs.reset_stats();
        assert_eq!((regs.hits(), regs.misses()), (0, 0));
    }
}
