//! Hardware-side ASAP and MMU configuration.

use asap_cache::HierarchyConfig;
use asap_tlb::{ClusteredTlbConfig, PwcConfig, TlbConfig};
use asap_types::PtLevel;

/// Which PT levels the hardware prefetcher targets — the paper's `P1` /
/// `P1+P2` knob (§5.1). Empty = ASAP off (the baseline).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AsapHwConfig {
    /// Levels to prefetch on every TLB miss.
    pub levels: Vec<PtLevel>,
}

impl AsapHwConfig {
    /// ASAP disabled.
    #[must_use]
    pub fn off() -> Self {
        Self::default()
    }

    /// Prefetch PL1 only (`P1`).
    #[must_use]
    pub fn p1() -> Self {
        Self {
            levels: vec![PtLevel::Pl1],
        }
    }

    /// Prefetch PL1 and PL2 (`P1 + P2`).
    #[must_use]
    pub fn p1_p2() -> Self {
        Self {
            levels: vec![PtLevel::Pl1, PtLevel::Pl2],
        }
    }

    /// Whether any prefetch is configured.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        !self.levels.is_empty()
    }
}

/// Full native-MMU configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct MmuConfig {
    /// L1 D-TLB geometry.
    pub l1_tlb: TlbConfig,
    /// L2 S-TLB geometry.
    pub l2_tlb: TlbConfig,
    /// Split page-walk caches.
    pub pwc: PwcConfig,
    /// Cache hierarchy (Table 5).
    pub hierarchy: HierarchyConfig,
    /// Hardware prefetch levels.
    pub asap: AsapHwConfig,
    /// Range registers available to the prefetcher.
    pub range_registers: usize,
    /// Clustered TLB (§5.4.1), looked up after the L2 S-TLB misses.
    pub clustered_tlb: Option<ClusteredTlbConfig>,
    /// Deterministic seed.
    pub seed: u64,
}

impl Default for MmuConfig {
    /// The paper's Table 5 baseline (no ASAP, no clustered TLB).
    fn default() -> Self {
        Self {
            l1_tlb: TlbConfig::l1_dtlb(),
            l2_tlb: TlbConfig::l2_stlb(),
            pwc: PwcConfig::split_default(),
            hierarchy: HierarchyConfig::broadwell_like(),
            asap: AsapHwConfig::off(),
            range_registers: 16,
            clustered_tlb: None,
            seed: 0,
        }
    }
}

impl MmuConfig {
    /// Enables ASAP prefetching.
    #[must_use]
    pub fn with_asap(mut self, asap: AsapHwConfig) -> Self {
        self.asap = asap;
        self
    }

    /// Enables the clustered TLB.
    #[must_use]
    pub fn with_clustered_tlb(mut self) -> Self {
        self.clustered_tlb = Some(ClusteredTlbConfig::default_eval());
        self
    }

    /// Swaps the PWC geometry (capacity ablation, §5.1.1).
    #[must_use]
    pub fn with_pwc(mut self, pwc: PwcConfig) -> Self {
        self.pwc = pwc;
        self
    }

    /// Swaps the cache hierarchy.
    #[must_use]
    pub fn with_hierarchy(mut self, hierarchy: HierarchyConfig) -> Self {
        self.hierarchy = hierarchy;
        self
    }

    /// Sets the seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Per-dimension ASAP configuration for virtualized translation — the
/// paper's Fig. 10 sweep.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NestedAsapConfig {
    /// Guest-dimension prefetch levels (`P1g`, `P2g`).
    pub guest: Vec<PtLevel>,
    /// Host-dimension prefetch levels (`P1h`, `P2h`).
    pub host: Vec<PtLevel>,
}

impl NestedAsapConfig {
    /// Baseline: no prefetching in either dimension.
    #[must_use]
    pub fn off() -> Self {
        Self::default()
    }

    /// `P1g`: guest PL1 only.
    #[must_use]
    pub fn p1g() -> Self {
        Self {
            guest: vec![PtLevel::Pl1],
            host: vec![],
        }
    }

    /// `P1g + P2g`: both guest levels.
    #[must_use]
    pub fn p1g_p2g() -> Self {
        Self {
            guest: vec![PtLevel::Pl1, PtLevel::Pl2],
            host: vec![],
        }
    }

    /// `P1g + P1h`: PL1 in both dimensions.
    #[must_use]
    pub fn p1g_p1h() -> Self {
        Self {
            guest: vec![PtLevel::Pl1],
            host: vec![PtLevel::Pl1],
        }
    }

    /// `P1g + P1h + P2g + P2h`: everything (the paper's best).
    #[must_use]
    pub fn all() -> Self {
        Self {
            guest: vec![PtLevel::Pl1, PtLevel::Pl2],
            host: vec![PtLevel::Pl1, PtLevel::Pl2],
        }
    }

    /// The Fig. 12 configuration: guest PL1+PL2, host PL2 only (the host
    /// uses 2 MiB pages, so its PT has no PL1 level).
    #[must_use]
    pub fn host_2m() -> Self {
        Self {
            guest: vec![PtLevel::Pl1, PtLevel::Pl2],
            host: vec![PtLevel::Pl2],
        }
    }

    /// Whether any prefetch is configured.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        !self.guest.is_empty() || !self.host.is_empty()
    }
}

/// Full nested-MMU configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct NestedMmuConfig {
    /// L1 D-TLB geometry (caches gVA → hPA).
    pub l1_tlb: TlbConfig,
    /// L2 S-TLB geometry.
    pub l2_tlb: TlbConfig,
    /// Guest-dimension PWC ("one dedicated PWC for guest PT", Table 5).
    pub guest_pwc: PwcConfig,
    /// Host-dimension PWC.
    pub host_pwc: PwcConfig,
    /// Cache hierarchy.
    pub hierarchy: HierarchyConfig,
    /// Per-dimension prefetch levels.
    pub asap: NestedAsapConfig,
    /// Range registers for guest VMA descriptors.
    pub range_registers: usize,
    /// Deterministic seed.
    pub seed: u64,
}

impl Default for NestedMmuConfig {
    fn default() -> Self {
        Self {
            l1_tlb: TlbConfig::l1_dtlb(),
            l2_tlb: TlbConfig::l2_stlb(),
            guest_pwc: PwcConfig::split_default(),
            host_pwc: PwcConfig::split_default(),
            hierarchy: HierarchyConfig::broadwell_like(),
            asap: NestedAsapConfig::off(),
            range_registers: 16,
            seed: 0,
        }
    }
}

impl NestedMmuConfig {
    /// Sets the per-dimension ASAP levels.
    #[must_use]
    pub fn with_asap(mut self, asap: NestedAsapConfig) -> Self {
        self.asap = asap;
        self
    }

    /// Swaps both PWC geometries (capacity ablation).
    #[must_use]
    pub fn with_pwcs(mut self, pwc: PwcConfig) -> Self {
        self.guest_pwc = pwc.clone();
        self.host_pwc = pwc;
        self
    }

    /// Sets the seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_configs() {
        assert!(!AsapHwConfig::off().is_enabled());
        assert_eq!(AsapHwConfig::p1().levels, vec![PtLevel::Pl1]);
        assert_eq!(
            AsapHwConfig::p1_p2().levels,
            vec![PtLevel::Pl1, PtLevel::Pl2]
        );
        let all = NestedAsapConfig::all();
        assert_eq!(all.guest.len(), 2);
        assert_eq!(all.host.len(), 2);
        assert!(NestedAsapConfig::p1g().host.is_empty());
        assert_eq!(NestedAsapConfig::host_2m().host, vec![PtLevel::Pl2]);
        assert!(!NestedAsapConfig::off().is_enabled());
    }

    #[test]
    fn default_mmu_is_baseline() {
        let c = MmuConfig::default();
        assert!(!c.asap.is_enabled());
        assert!(c.clustered_tlb.is_none());
        assert_eq!(c.range_registers, 16);
        let c = c.with_asap(AsapHwConfig::p1()).with_clustered_tlb();
        assert!(c.asap.is_enabled());
        assert!(c.clustered_tlb.is_some());
    }
}
