//! Source of PTE-cluster contents for the clustered TLB fill.

use asap_types::{PhysFrameNum, VirtAddr};

/// Supplies the 8 translations of the aligned PTE cluster containing a
/// virtual address — the contents of the PTE cache line the walker just
/// fetched, which the clustered TLB's fill logic inspects (§5.4.1).
pub trait ClusterSource {
    /// Translations of the aligned 8-page cluster containing `va`
    /// (`None` for unmapped neighbours).
    fn cluster_frames(&self, va: VirtAddr) -> [Option<PhysFrameNum>; 8];
}

impl ClusterSource for asap_os::Process {
    fn cluster_frames(&self, va: VirtAddr) -> [Option<PhysFrameNum>; 8] {
        self.cluster_translations(va)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asap_os::{Process, ProcessConfig, VmaKind};
    use asap_types::{Asid, ByteSize};

    #[test]
    fn process_implements_cluster_source() {
        let mut p = Process::new(ProcessConfig::new(Asid(1)).with_heap(ByteSize::mib(1)));
        let heap = p.vma_of_kind(VmaKind::Heap).unwrap().start();
        p.touch(heap).unwrap();
        let source: &dyn ClusterSource = &p;
        let cluster = source.cluster_frames(heap);
        assert!(cluster[0].is_some());
    }
}
