//! The base-plus-offset prefetch address computation (Fig. 6).

use asap_os::VmaDescriptor;
use asap_types::{PhysAddr, PtLevel, VirtAddr, INDEX_BITS, PAGE_SHIFT, PTE_SIZE};

/// Computes the physical address of the page-table **entry** at `level`
/// that the walk for `va` will read, assuming the level's nodes sit in the
/// descriptor's contiguous sorted region.
///
/// The arithmetic is exactly the hardware's (Fig. 6): the node index is the
/// VMA byte offset shifted right by the level's table coverage (the `s1` /
/// `s2` shifts), and the entry offset within the node comes straight from
/// the VA's index bits for that level. No memory is consulted — this is
/// what lets the prefetch launch concurrently with the walker's first
/// access.
///
/// Returns `None` when the descriptor has no base for `level` (that level
/// is not reserved) or `level` is not a prefetchable level.
///
/// # Examples
///
/// ```
/// use asap_core::prefetch_target;
/// use asap_os::VmaDescriptor;
/// use asap_types::{PhysAddr, PtLevel, VirtAddr};
///
/// let desc = VmaDescriptor {
///     start: VirtAddr::new(0x5600_0000_0000).unwrap(),
///     end: VirtAddr::new(0x5600_4000_0000).unwrap(),
///     pl1_base: Some(PhysAddr::new(0x10_0000_0000)),
///     pl2_base: None,
/// };
/// // Second page of the VMA: PL1 node 0, entry index 1.
/// let va = VirtAddr::new(0x5600_0000_1000).unwrap();
/// let t = prefetch_target(&desc, PtLevel::Pl1, va).unwrap();
/// assert_eq!(t, PhysAddr::new(0x10_0000_0000 + 8));
/// ```
#[must_use]
pub fn prefetch_target(desc: &VmaDescriptor, level: PtLevel, va: VirtAddr) -> Option<PhysAddr> {
    let base = match level {
        PtLevel::Pl1 => desc.pl1_base,
        PtLevel::Pl2 => desc.pl2_base,
        _ => None,
    }?;
    debug_assert!(
        desc.covers(va),
        "prefetch computed for a va outside the VMA"
    );
    // i-th table page at `level` within the VMA (floor semantics match the
    // OS placement in asap-os::placement::node_index).
    let table_shift = level.index_shift() + INDEX_BITS;
    let node_index = (va.raw() >> table_shift) - (desc.start.raw() >> table_shift);
    let entry_index = level.index_of(va);
    Some(base.add((node_index << PAGE_SHIFT) + entry_index * PTE_SIZE))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn desc(start: u64, end: u64, pl1: Option<u64>, pl2: Option<u64>) -> VmaDescriptor {
        VmaDescriptor {
            start: VirtAddr::new(start).unwrap(),
            end: VirtAddr::new(end).unwrap(),
            pl1_base: pl1.map(PhysAddr::new),
            pl2_base: pl2.map(PhysAddr::new),
        }
    }

    #[test]
    fn pl1_walks_through_entries_then_nodes() {
        let d = desc(0x4000_0000, 0x8000_0000, Some(0x100_0000), None);
        // Page 0: node 0, entry 0.
        let t0 = prefetch_target(&d, PtLevel::Pl1, VirtAddr::new(0x4000_0000).unwrap()).unwrap();
        assert_eq!(t0.raw(), 0x100_0000);
        // Page 511: node 0, entry 511.
        let t511 = prefetch_target(
            &d,
            PtLevel::Pl1,
            VirtAddr::new(0x4000_0000 + 511 * 0x1000).unwrap(),
        )
        .unwrap();
        assert_eq!(t511.raw(), 0x100_0000 + 511 * 8);
        // Page 512: node 1, entry 0.
        let t512 = prefetch_target(
            &d,
            PtLevel::Pl1,
            VirtAddr::new(0x4000_0000 + 512 * 0x1000).unwrap(),
        )
        .unwrap();
        assert_eq!(t512.raw(), 0x100_0000 + 4096);
    }

    #[test]
    fn pl2_uses_coarser_shift() {
        let d = desc(0x40_0000_0000, 0x60_0000_0000, None, Some(0x200_0000));
        // First GiB: PL2 node 0; entry index = PL2 bits of the VA.
        let va = VirtAddr::new(0x40_0000_0000 + 3 * (2 << 20)).unwrap(); // 3rd 2MiB region
        let t = prefetch_target(&d, PtLevel::Pl2, va).unwrap();
        assert_eq!(t.raw(), 0x200_0000 + 3 * 8);
        // Second GiB: node 1.
        let va = VirtAddr::new(0x40_0000_0000 + (1 << 30)).unwrap();
        let t = prefetch_target(&d, PtLevel::Pl2, va).unwrap();
        assert_eq!(t.raw(), 0x200_0000 + 4096);
    }

    #[test]
    fn missing_base_yields_none() {
        let d = desc(0x1000, 0x10_0000, Some(0x999_0000), None);
        assert!(prefetch_target(&d, PtLevel::Pl2, VirtAddr::new(0x2000).unwrap()).is_none());
        assert!(prefetch_target(&d, PtLevel::Pl3, VirtAddr::new(0x2000).unwrap()).is_none());
        assert!(prefetch_target(&d, PtLevel::Pl4, VirtAddr::new(0x2000).unwrap()).is_none());
    }

    #[test]
    fn unaligned_vma_start_uses_floor_indexing() {
        // VMA starting mid-2MiB-region: its first PL1 node covers the
        // partial region, matching the OS's floor-based node_index.
        let start = 0x4000_0000 + (1 << 20); // 1 MiB into a 2 MiB region
        let d = desc(start, start + (8 << 20), Some(0x300_0000), None);
        // An address in the same 2 MiB region as `start`: node 0.
        let va = VirtAddr::new(start + (1 << 20) - 0x1000).unwrap();
        let t = prefetch_target(&d, PtLevel::Pl1, va).unwrap();
        assert_eq!(t.raw() & !0xfff, 0x300_0000);
        // An address in the next 2 MiB region: node 1.
        let va = VirtAddr::new(start + (1 << 20)).unwrap();
        let t = prefetch_target(&d, PtLevel::Pl1, va).unwrap();
        assert_eq!(t.raw() & !0xfff, 0x300_0000 + 4096);
    }

    /// The central correctness property: the prefetch target equals the
    /// entry address the real walker reads, whenever the OS placed the node
    /// in line. Exercised end-to-end (OS placement + hardware arithmetic).
    #[test]
    fn prefetch_matches_walker_on_asap_process() {
        use asap_os::{AsapOsConfig, Process, ProcessConfig, VmaKind};
        use asap_types::{Asid, ByteSize};
        let mut p = Process::new(
            ProcessConfig::new(Asid(1))
                .with_heap(ByteSize::mib(512))
                .with_asap(AsapOsConfig::pl1_and_pl2())
                .with_seed(3),
        );
        let heap = *p.vma_of_kind(VmaKind::Heap).unwrap();
        let vas: Vec<VirtAddr> = (0..64u64)
            .map(|i| {
                VirtAddr::new(heap.start().raw() + i * 7 * 0x1000 + (i % 3) * (2 << 20)).unwrap()
            })
            .collect();
        for va in &vas {
            p.touch(*va).unwrap();
        }
        let d = p
            .vma_descriptors()
            .iter()
            .find(|d| d.covers(heap.start()))
            .copied()
            .unwrap();
        for va in &vas {
            let trace = p.walk(*va);
            for level in [PtLevel::Pl1, PtLevel::Pl2] {
                let step = trace.step_at(level).unwrap();
                let predicted = prefetch_target(&d, level, *va).unwrap();
                assert_eq!(
                    predicted, step.entry_addr,
                    "{level} prefetch must hit the walker's entry address"
                );
            }
        }
    }
}
