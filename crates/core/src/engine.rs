//! The unified translation-engine abstraction.
//!
//! The paper evaluates one mechanism (ASAP) on two machines: native
//! translation ([`Mmu`](crate::Mmu), §3.1–3.3) and nested translation
//! ([`NestedMmu`](crate::NestedMmu), §3.4). This module gives both the same
//! shape so the rest of the system — the driver loop, the scenario
//! registry, future backends — can stay generic:
//!
//! * [`TranslationEngine`] — the interface a simulation driver speaks:
//!   context load, translate-on-access, demand/co-runner accesses, clock
//!   control, and a statistics snapshot with prefetch accounting;
//! * [`SimMachine`] — the software side an engine translates for (a
//!   [`Process`] or a [`VirtualMachine`]): demand paging plus a
//!   ground-truth translation used by perfect-TLB runs;
//! * [`EngineCore`] — the plumbing both MMUs share (TLB fast path, cache
//!   hierarchy and its clock, prefetch issue, walk-latency accounting), so
//!   `mmu.rs` and `nested_mmu.rs` cannot drift apart.
//!
//! A new translation backend (e.g. a cache-backed TLB à la Victima, or a
//! speculative hashed scheme à la Revelator) plugs in by implementing
//! [`TranslationEngine`], typically over an embedded [`EngineCore`].

use crate::{prefetch_target, ServedByMatrix, ServedSource, WalkLatencyStats};
use asap_cache::{AccessResult, CacheHierarchy, HierarchyConfig};
use asap_os::{OsError, Process, VmaDescriptor};
use asap_tlb::{TlbConfig, TlbEntry, TlbHierarchy, TlbLevel, TlbLookup, TlbStats};
use asap_types::{Asid, CacheLineAddr, PhysAddr, PtLevel, VirtAddr, VirtPageNum};
use asap_virt::VirtualMachine;

/// Cycles charged for a translation that hits the L2 S-TLB (the L1 hit is
/// folded into the load pipeline). Used by the execution-time model
/// (Fig. 2); walk latencies are unaffected.
pub const L2_TLB_HIT_CYCLES: u64 = 7;

/// How a translation was resolved, across every engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TranslationPath {
    /// L1 D-TLB hit.
    TlbL1,
    /// L2 S-TLB hit.
    TlbL2,
    /// Clustered-TLB hit (§5.4.1), when configured.
    ClusteredTlb,
    /// Hit on a cache-resident TLB block (a Victima-style backend): the
    /// translation was recovered from the L2 data cache, no walk ran.
    TlbBlock,
    /// Full page walk (1D native, 2D nested).
    Walk,
}

/// The engine-agnostic outcome of one translation request — what the
/// generic driver loop needs for cycle and prefetch accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineOutcome {
    /// How the translation was served.
    pub path: TranslationPath,
    /// Translation-side latency in cycles (0 for an L1 TLB hit).
    pub latency: u64,
    /// The resulting physical address (`None` on a page fault). For nested
    /// engines this is the final host-physical address.
    pub phys: Option<PhysAddr>,
    /// ASAP prefetches issued for this access (0 on TLB hits).
    pub prefetches_issued: u8,
    /// ASAP prefetches dropped for lack of an MSHR.
    pub prefetches_dropped: u8,
}

/// An owned snapshot of every statistic a run report is built from.
#[derive(Debug, Clone)]
pub struct EngineStats {
    /// Walk-latency distribution over the window.
    pub walks: WalkLatencyStats,
    /// Per-level serving sources (guest dimension for nested engines).
    pub served: ServedByMatrix,
    /// Host-dimension serving sources (nested engines only).
    pub host_served: Option<ServedByMatrix>,
    /// L2 S-TLB hit/miss counters (the MPKI source).
    pub l2_tlb: TlbStats,
    /// Walks that ended in a page fault.
    pub walk_faults: u64,
}

/// The software machine an engine translates for: it owns the page tables
/// and backs demand paging. [`Process`] (native) and [`VirtualMachine`]
/// (nested) implement it.
pub trait SimMachine {
    /// Demand-pages `va` (OS work off the measured path).
    ///
    /// # Errors
    ///
    /// Returns the OS error when `va` lies outside every VMA.
    fn demand_page(&mut self, va: VirtAddr) -> Result<(), OsError>;

    /// Ground-truth translation without any MMU involvement — the
    /// perfect-TLB methodology of Table 6. Takes `&mut self` because nested
    /// machines may lazily extend host mappings for page-table pages.
    fn reference_translate(&mut self, va: VirtAddr) -> Option<PhysAddr>;
}

impl SimMachine for Process {
    fn demand_page(&mut self, va: VirtAddr) -> Result<(), OsError> {
        self.touch(va).map(|_| ())
    }

    fn reference_translate(&mut self, va: VirtAddr) -> Option<PhysAddr> {
        self.translate(va).map(|t| t.phys_addr(va))
    }
}

impl SimMachine for VirtualMachine {
    fn demand_page(&mut self, va: VirtAddr) -> Result<(), OsError> {
        self.touch(va).map(|_| ())
    }

    fn reference_translate(&mut self, va: VirtAddr) -> Option<PhysAddr> {
        self.nested_walk(va).data_hpa()
    }
}

/// One pluggable translation backend: the interface between an MMU model
/// and the generic simulation driver.
///
/// Implementations simulate the full translation machine — TLB lookups,
/// prefetches, walks over the cache hierarchy — and keep their own
/// statistics, exposed as an owned [`EngineStats`] snapshot.
pub trait TranslationEngine {
    /// The paired software state ([`Process`], [`VirtualMachine`], ...).
    type Machine: SimMachine;

    /// Loads OS/hypervisor-provided context (range-register descriptors) —
    /// the context-switch step of §3.4.
    fn load_context(&mut self, machine: &Self::Machine);

    /// Translates one application reference, advancing the engine clock by
    /// the translation latency.
    fn translate_access(&mut self, machine: &mut Self::Machine, va: VirtAddr) -> EngineOutcome;

    /// A demand data access (the application's own load/store reaching the
    /// cache hierarchy); advances the clock.
    fn data_access(&mut self, pa: PhysAddr) -> AccessResult;

    /// Cache pressure from the SMT co-runner: perturbs cache contents
    /// without consuming this thread's cycles (§4).
    fn corunner_access(&mut self, line: CacheLineAddr);

    /// The current cycle count.
    fn now(&self) -> u64;

    /// Advances the clock (non-memory work between accesses).
    fn advance(&mut self, cycles: u64);

    /// Resets all statistics, keeping cached state warm (post-warmup).
    fn reset_stats(&mut self);

    /// An owned snapshot of the current statistics.
    fn stats_snapshot(&self) -> EngineStats;
}

/// The state and plumbing shared by every translation engine: the TLB
/// hierarchy, the cache hierarchy with its clock, and walk accounting.
/// Engines embed one and add their backend-specific structures (PWCs,
/// range registers, clustered TLB, TLB-block stores, speculation units,
/// ...). Public so out-of-crate backends (e.g. `asap-contenders`) build on
/// the same plumbing as [`Mmu`](crate::Mmu)/[`NestedMmu`](crate::NestedMmu)
/// instead of forking it.
#[derive(Debug)]
pub struct EngineCore {
    /// The L1/L2 TLB hierarchy (the fast path every engine shares).
    pub tlbs: TlbHierarchy,
    /// The cache hierarchy; its internal clock is the engine clock.
    pub hierarchy: CacheHierarchy,
    /// Walk-latency distribution over the current window.
    pub walk_stats: WalkLatencyStats,
    /// Walks that ended in a page fault.
    pub walk_faults: u64,
}

impl EngineCore {
    /// Builds the shared core from TLB geometries and a hierarchy config.
    #[must_use]
    pub fn new(
        l1_tlb: TlbConfig,
        l2_tlb: TlbConfig,
        hierarchy: HierarchyConfig,
        seed: u64,
    ) -> Self {
        Self {
            tlbs: TlbHierarchy::new(l1_tlb, l2_tlb, seed),
            hierarchy: CacheHierarchy::new(hierarchy),
            walk_stats: WalkLatencyStats::new(),
            walk_faults: 0,
        }
    }

    /// The TLB fast path: on a hit, charges the hit latency to the clock
    /// and returns the level, latency and entry for the caller to build its
    /// outcome from.
    pub fn tlb_lookup(
        &mut self,
        asid: Asid,
        vpn: VirtPageNum,
    ) -> Option<(TlbLevel, u64, TlbEntry)> {
        match self.tlbs.lookup(asid, vpn) {
            TlbLookup::Hit { entry, level } => {
                let latency = match level {
                    TlbLevel::L1 => 0,
                    TlbLevel::L2 => L2_TLB_HIT_CYCLES,
                };
                self.hierarchy.advance(latency);
                Some((level, latency, entry))
            }
            TlbLookup::Miss => None,
        }
    }

    /// Issues the ASAP prefetches a descriptor enables for `va` at time
    /// `at`, accumulating issue/drop counts.
    pub fn issue_prefetches(
        &mut self,
        desc: &VmaDescriptor,
        levels: &[PtLevel],
        va: VirtAddr,
        at: u64,
        issued: &mut u8,
        dropped: &mut u8,
    ) {
        for &level in levels {
            if let Some(target) = prefetch_target(desc, level, va) {
                match self.hierarchy.prefetch_at(target.cache_line(), at) {
                    Some(_) => *issued = issued.saturating_add(1),
                    None => *dropped = dropped.saturating_add(1),
                }
            }
        }
    }

    /// One walker access to the cache hierarchy at walk-local time `t`:
    /// advances `t` by the access latency and classifies the serving
    /// source (merged with an in-flight prefetch or served by a level).
    pub fn walk_access(&mut self, line: CacheLineAddr, t: &mut u64) -> ServedSource {
        let r = self.hierarchy.access_at(line, *t);
        *t += r.latency;
        if r.merged {
            ServedSource::Merged(r.served_by)
        } else {
            ServedSource::Cache(r.served_by)
        }
    }

    /// Closes out a walk that started at `t0` and ended at `t`: charges the
    /// latency to the global clock, records it, and returns it.
    pub fn finish_walk(&mut self, t0: u64, t: u64) -> u64 {
        let latency = t - t0;
        self.hierarchy.advance(latency);
        self.walk_stats.record(latency);
        latency
    }

    /// A demand data access through the hierarchy; advances the clock.
    pub fn data_access(&mut self, pa: PhysAddr) -> AccessResult {
        self.hierarchy.access(pa.cache_line())
    }

    /// Cache pressure from the SMT co-runner (no cycles consumed here).
    pub fn corunner_access(&mut self, line: CacheLineAddr) {
        let now = self.hierarchy.now();
        let _ = self.hierarchy.access_at(line, now);
    }

    /// The current cycle count.
    #[must_use]
    pub fn now(&self) -> u64 {
        self.hierarchy.now()
    }

    /// Advances the clock (non-memory work between accesses).
    pub fn advance(&mut self, cycles: u64) {
        self.hierarchy.advance(cycles);
    }

    /// Resets the shared statistics (TLBs, hierarchy, walk accounting),
    /// keeping all cached state warm.
    pub fn reset_stats(&mut self) {
        self.walk_stats = WalkLatencyStats::new();
        self.walk_faults = 0;
        self.tlbs.reset_stats();
        self.hierarchy.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asap_os::{AsapOsConfig, ProcessConfig, VmaKind};
    use asap_types::ByteSize;
    use asap_virt::EptConfig;

    fn process() -> Process {
        Process::new(
            ProcessConfig::new(Asid(1))
                .with_heap(ByteSize::mib(16))
                .with_asap(AsapOsConfig::disabled()),
        )
    }

    #[test]
    fn process_is_a_sim_machine() {
        let mut p = process();
        let va = p.vma_of_kind(VmaKind::Heap).unwrap().start();
        assert_eq!(p.reference_translate(va), None, "untouched page");
        p.demand_page(va).unwrap();
        let reference = p.reference_translate(va);
        assert!(reference.is_some());
        assert_eq!(reference, p.translate(va).map(|t| t.phys_addr(va)));
    }

    #[test]
    fn vm_is_a_sim_machine() {
        let mut vm = VirtualMachine::new(
            ProcessConfig::new(Asid(1))
                .with_heap(ByteSize::mib(16))
                .with_compact_phys(),
            EptConfig::default(),
        );
        let va = vm.guest().vma_of_kind(VmaKind::Heap).unwrap().start();
        vm.demand_page(va).unwrap();
        assert!(vm.reference_translate(va).is_some());
    }

    #[test]
    fn core_tlb_fast_path_charges_l2_latency() {
        let mut core = EngineCore::new(
            TlbConfig::l1_dtlb(),
            TlbConfig::l2_stlb(),
            HierarchyConfig::broadwell_like(),
            0,
        );
        let va = VirtAddr::new(0x4000).unwrap();
        let vpn = va.page_number();
        assert!(core.tlb_lookup(Asid(1), vpn).is_none());
        core.tlbs.fill(
            Asid(1),
            vpn,
            TlbEntry::new(
                PhysAddr::new(0x9000).frame_number(),
                asap_types::PageSize::Size4K,
            ),
        );
        let (level, latency, _) = core.tlb_lookup(Asid(1), vpn).unwrap();
        assert_eq!(level, TlbLevel::L1);
        assert_eq!(latency, 0);
    }
}
