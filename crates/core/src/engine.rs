//! The unified translation-engine abstraction.
//!
//! The paper evaluates one mechanism (ASAP) on two machines: native
//! translation ([`Mmu`](crate::Mmu), §3.1–3.3) and nested translation
//! ([`NestedMmu`](crate::NestedMmu), §3.4). This module gives both the same
//! shape so the rest of the system — the driver loop, the scenario
//! registry, future backends — can stay generic:
//!
//! * [`TranslationEngine`] — the interface a simulation driver speaks:
//!   context load, translate-on-access, demand/co-runner accesses, clock
//!   control, and a statistics snapshot with prefetch accounting;
//! * [`SimMachine`] — the software side an engine translates for (a
//!   [`Process`] or a [`VirtualMachine`]): demand paging plus a
//!   ground-truth translation used by perfect-TLB runs;
//! * [`EngineCore`] — the **per-core** plumbing both MMUs share (private
//!   TLB fast path, local clock, prefetch issue, walk-latency accounting)
//!   over a [`SharedFabric`] handle to the machine's one memory fabric, so
//!   `mmu.rs` and `nested_mmu.rs` cannot drift apart and N cores can
//!   contend for the same caches.
//!
//! A new translation backend (e.g. a cache-backed TLB à la Victima, or a
//! speculative hashed scheme à la Revelator) plugs in by implementing
//! [`TranslationEngine`], typically over an embedded [`EngineCore`].

use crate::{prefetch_target, ServedByMatrix, ServedSource, WalkLatencyStats};
use asap_cache::{AccessResult, HierarchyConfig, HierarchyStats, ServedBy, SharedFabric};
use asap_os::{OsError, Process, VmaDescriptor};
use asap_telemetry::{Collect, MetricSet, TraceEventKind, TraceSink};
use asap_tlb::{TlbConfig, TlbEntry, TlbHierarchy, TlbLevel, TlbLookup, TlbStats};
use asap_types::{Asid, CacheLineAddr, PhysAddr, PtLevel, VirtAddr, VirtPageNum};
use asap_virt::VirtualMachine;

/// Cycles charged for a translation that hits the L2 S-TLB (the L1 hit is
/// folded into the load pipeline). Used by the execution-time model
/// (Fig. 2); walk latencies are unaffected.
pub const L2_TLB_HIT_CYCLES: u64 = 7;

/// How a translation was resolved, across every engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TranslationPath {
    /// L1 D-TLB hit.
    TlbL1,
    /// L2 S-TLB hit.
    TlbL2,
    /// Clustered-TLB hit (§5.4.1), when configured.
    ClusteredTlb,
    /// Hit on a cache-resident TLB block (a Victima-style backend): the
    /// translation was recovered from the L2 data cache, no walk ran.
    TlbBlock,
    /// Full page walk (1D native, 2D nested).
    Walk,
}

/// The engine-agnostic outcome of one translation request — what the
/// generic driver loop needs for cycle and prefetch accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineOutcome {
    /// How the translation was served.
    pub path: TranslationPath,
    /// Translation-side latency in cycles (0 for an L1 TLB hit).
    pub latency: u64,
    /// The resulting physical address (`None` on a page fault). For nested
    /// engines this is the final host-physical address.
    pub phys: Option<PhysAddr>,
    /// ASAP prefetches issued for this access (0 on TLB hits).
    pub prefetches_issued: u8,
    /// ASAP prefetches dropped for lack of an MSHR.
    pub prefetches_dropped: u8,
}

/// An owned snapshot of every statistic a run report is built from.
#[derive(Debug, Clone)]
pub struct EngineStats {
    /// Walk-latency distribution over the window.
    pub walks: WalkLatencyStats,
    /// Per-level serving sources (guest dimension for nested engines).
    pub served: ServedByMatrix,
    /// Host-dimension serving sources (nested engines only).
    pub host_served: Option<ServedByMatrix>,
    /// L2 S-TLB hit/miss counters (the MPKI source).
    pub l2_tlb: TlbStats,
    /// Walks that ended in a page fault.
    pub walk_faults: u64,
}

impl Collect for EngineStats {
    fn collect(&self, prefix: &str, out: &mut MetricSet) {
        out.counter(
            format!("{prefix}walks_total"),
            "page walks performed",
            self.walks.count(),
        );
        out.counter(
            format!("{prefix}walk_faults_total"),
            "walks that ended in a page fault",
            self.walk_faults,
        );
        self.walks.collect(&format!("{prefix}walk_"), out);
        self.l2_tlb.collect(&format!("{prefix}tlb_l2_"), out);
        self.served.collect(prefix, out);
        if let Some(host) = &self.host_served {
            host.collect(&format!("{prefix}host_"), out);
        }
    }
}

/// The software machine an engine translates for: it owns the page tables
/// and backs demand paging. [`Process`] (native) and [`VirtualMachine`]
/// (nested) implement it.
pub trait SimMachine {
    /// Demand-pages `va` (OS work off the measured path).
    ///
    /// # Errors
    ///
    /// Returns the OS error when `va` lies outside every VMA.
    fn demand_page(&mut self, va: VirtAddr) -> Result<(), OsError>;

    /// Ground-truth translation without any MMU involvement — the
    /// perfect-TLB methodology of Table 6. Takes `&mut self` because nested
    /// machines may lazily extend host mappings for page-table pages.
    fn reference_translate(&mut self, va: VirtAddr) -> Option<PhysAddr>;
}

impl SimMachine for Process {
    fn demand_page(&mut self, va: VirtAddr) -> Result<(), OsError> {
        self.touch(va).map(|_| ())
    }

    fn reference_translate(&mut self, va: VirtAddr) -> Option<PhysAddr> {
        self.translate(va).map(|t| t.phys_addr(va))
    }
}

impl SimMachine for VirtualMachine {
    fn demand_page(&mut self, va: VirtAddr) -> Result<(), OsError> {
        self.touch(va).map(|_| ())
    }

    fn reference_translate(&mut self, va: VirtAddr) -> Option<PhysAddr> {
        // Equivalent to `self.nested_walk(va).data_hpa()`: `touch` backs the
        // guest node chain and data page in the EPT up front, so composing
        // the two per-dimension translations never needs a lazy host fill.
        let gpa = self.guest().translate(va)?.phys_addr(va);
        self.ept().translate(gpa)
    }
}

/// One pluggable translation backend: the interface between an MMU model
/// and the generic simulation driver.
///
/// Implementations simulate the full translation machine — TLB lookups,
/// prefetches, walks over the cache hierarchy — and keep their own
/// statistics, exposed as an owned [`EngineStats`] snapshot.
pub trait TranslationEngine {
    /// The paired software state ([`Process`], [`VirtualMachine`], ...).
    type Machine: SimMachine;

    /// Loads OS/hypervisor-provided context (range-register descriptors) —
    /// the context-switch step of §3.4.
    fn load_context(&mut self, machine: &Self::Machine);

    /// Translates one application reference, advancing the engine clock by
    /// the translation latency.
    fn translate_access(&mut self, machine: &mut Self::Machine, va: VirtAddr) -> EngineOutcome;

    /// A demand data access (the application's own load/store reaching the
    /// cache hierarchy); advances the clock.
    fn data_access(&mut self, pa: PhysAddr) -> AccessResult;

    /// Cache pressure from the SMT co-runner: perturbs cache contents
    /// without consuming this thread's cycles (§4).
    fn corunner_access(&mut self, line: CacheLineAddr);

    /// The current cycle count.
    fn now(&self) -> u64;

    /// Advances the clock (non-memory work between accesses).
    fn advance(&mut self, cycles: u64);

    /// Resets all statistics, keeping cached state warm (post-warmup).
    fn reset_stats(&mut self);

    /// An owned snapshot of the current statistics.
    fn stats_snapshot(&self) -> EngineStats;

    /// Installs a trace sink recording this engine's per-access events.
    /// The default ignores it, so backends without tracing support stay
    /// valid; engines embedding an [`EngineCore`] delegate to it.
    fn set_tracer(&mut self, sink: TraceSink) {
        let _ = sink;
    }

    /// Removes and returns the installed trace sink, if any.
    fn take_tracer(&mut self) -> Option<TraceSink> {
        None
    }

    /// Contributes this engine's statistics to a metrics snapshot under
    /// `prefix`. The default contributes nothing; engines embedding an
    /// [`EngineCore`] collect their [`EngineStats`] plus the shared-fabric
    /// counters, and backends append their mechanism-specific rows.
    fn collect_metrics(&self, prefix: &str, out: &mut MetricSet) {
        let _ = (prefix, out);
    }
}

/// The **private, per-core** state and plumbing every translation engine
/// embeds: the L1/L2 TLB hierarchy, the core's local clock, and walk
/// accounting — plus a handle to the machine's **shared**
/// [`MemoryFabric`](asap_cache::MemoryFabric) (caches, DRAM, MSHRs),
/// which N cores of an SMP machine reference through cloned
/// [`SharedFabric`] handles. Engines add their backend-specific private
/// structures on top (PWCs, range registers, clustered TLB, TLB-block
/// shadows, speculation units, ...). Public so out-of-crate backends
/// (e.g. `asap-contenders`) build on the same plumbing as
/// [`Mmu`](crate::Mmu)/[`NestedMmu`](crate::NestedMmu) instead of forking
/// it.
///
/// Timing model: the core keeps its own cycle counter and stamps it onto
/// every fabric request, so a single-core machine behaves exactly as when
/// the hierarchy owned the clock, while multiple cores interleave their
/// locally-timed requests over one fabric.
#[derive(Debug)]
pub struct EngineCore {
    /// The L1/L2 TLB hierarchy (per-core private fast path).
    pub tlbs: TlbHierarchy,
    /// Handle to the shared memory fabric.
    fabric: SharedFabric,
    /// The core's local clock.
    clock: u64,
    /// Walk-latency distribution over the current window.
    pub walk_stats: WalkLatencyStats,
    /// Walks that ended in a page fault.
    pub walk_faults: u64,
    /// The optional event tracer. `None` in every default configuration,
    /// so the recording hooks below are never-taken branches unless a run
    /// explicitly installs a sink — the zero-cost-when-off contract.
    tracer: Option<Box<TraceSink>>,
}

impl EngineCore {
    /// Builds a single-core engine core: TLB geometries plus a private
    /// memory fabric constructed from `hierarchy`.
    #[must_use]
    pub fn new(
        l1_tlb: TlbConfig,
        l2_tlb: TlbConfig,
        hierarchy: HierarchyConfig,
        seed: u64,
    ) -> Self {
        Self::with_fabric(l1_tlb, l2_tlb, SharedFabric::new(hierarchy), seed)
    }

    /// Builds a core over an **existing** fabric handle — the multi-core
    /// path, where every core of the machine clones one [`SharedFabric`].
    #[must_use]
    pub fn with_fabric(
        l1_tlb: TlbConfig,
        l2_tlb: TlbConfig,
        fabric: SharedFabric,
        seed: u64,
    ) -> Self {
        Self {
            tlbs: TlbHierarchy::new(l1_tlb, l2_tlb, seed),
            fabric,
            clock: 0,
            walk_stats: WalkLatencyStats::new(),
            walk_faults: 0,
            tracer: None,
        }
    }

    /// Installs an event tracer; subsequent translations record into it.
    pub fn set_tracer(&mut self, sink: TraceSink) {
        self.tracer = Some(Box::new(sink));
    }

    /// Removes and returns the tracer (the end-of-run harvest).
    pub fn take_tracer(&mut self) -> Option<TraceSink> {
        self.tracer.take().map(|b| *b)
    }

    /// Contributes the shared-fabric statistics — the cache hierarchy
    /// levels and the DRAM locality counters — to a metrics snapshot.
    /// Engines call this from their `collect_metrics` after their own
    /// [`EngineStats`] so every backend emits the same fabric names.
    pub fn collect_fabric_metrics(&self, prefix: &str, out: &mut MetricSet) {
        self.hierarchy_stats().collect(prefix, out);
        self.fabric()
            .numa_stats()
            .collect(&format!("{prefix}numa_"), out);
    }

    /// The installed tracer, for engines recording backend-specific
    /// events (clustered-TLB hits, TLB-block hits, speculation).
    pub fn tracer_mut(&mut self) -> Option<&mut TraceSink> {
        self.tracer.as_deref_mut()
    }

    /// The core's handle to the shared memory fabric.
    #[must_use]
    pub fn fabric(&self) -> &SharedFabric {
        &self.fabric
    }

    /// The TLB fast path: on a hit, charges the hit latency to the clock
    /// and returns the level, latency and entry for the caller to build its
    /// outcome from.
    pub fn tlb_lookup(
        &mut self,
        asid: Asid,
        vpn: VirtPageNum,
    ) -> Option<(TlbLevel, u64, TlbEntry)> {
        match self.tlbs.lookup(asid, vpn) {
            TlbLookup::Hit { entry, level } => {
                let latency = match level {
                    TlbLevel::L1 => 0,
                    TlbLevel::L2 => L2_TLB_HIT_CYCLES,
                };
                self.clock += latency;
                if let Some(t) = &mut self.tracer {
                    let tlb_level = match level {
                        TlbLevel::L1 => 1,
                        TlbLevel::L2 => 2,
                    };
                    t.record(self.clock, TraceEventKind::TlbHit { level: tlb_level });
                }
                Some((level, latency, entry))
            }
            TlbLookup::Miss => None,
        }
    }

    /// Issues the ASAP prefetches a descriptor enables for `va` at time
    /// `at`, accumulating issue/drop counts.
    pub fn issue_prefetches(
        &mut self,
        desc: &VmaDescriptor,
        levels: &[PtLevel],
        va: VirtAddr,
        at: u64,
        issued: &mut u8,
        dropped: &mut u8,
    ) {
        for &level in levels {
            if let Some(target) = prefetch_target(desc, level, va) {
                let kind = match self.fabric.prefetch_at(target.cache_line(), at) {
                    Some(_) => {
                        *issued = issued.saturating_add(1);
                        TraceEventKind::PrefetchIssue
                    }
                    None => {
                        *dropped = dropped.saturating_add(1);
                        TraceEventKind::PrefetchDrop
                    }
                };
                if let Some(t) = &mut self.tracer {
                    t.record(at, kind);
                }
            }
        }
    }

    /// Issues one best-effort prefetch for `line` at time `at` (a
    /// backend-specific speculative fetch, e.g. Revelator's hashed data
    /// address). Returns the completion cycle, or `None` when dropped.
    pub fn prefetch_line_at(&mut self, line: CacheLineAddr, at: u64) -> Option<u64> {
        let done = self.fabric.prefetch_at(line, at);
        if let Some(t) = &mut self.tracer {
            t.record(
                at,
                if done.is_some() {
                    TraceEventKind::PrefetchIssue
                } else {
                    TraceEventKind::PrefetchDrop
                },
            );
        }
        done
    }

    /// One walker access to the shared fabric at walk-local time `t`:
    /// advances `t` by the access latency and classifies the serving
    /// source (merged with an in-flight prefetch or served by a level).
    pub fn walk_access(&mut self, line: CacheLineAddr, t: &mut u64) -> ServedSource {
        let issued_at = *t;
        let r = self.fabric.access_at(line, *t);
        *t += r.latency;
        if let Some(tracer) = &mut self.tracer {
            if r.merged {
                tracer.record(issued_at, TraceEventKind::MshrMerge);
            } else if r.served_by == ServedBy::Memory
                && self
                    .fabric
                    .home_node(line)
                    .is_some_and(|home| home != self.fabric.node())
            {
                tracer.record(issued_at, TraceEventKind::NumaHop);
            }
        }
        if r.merged {
            ServedSource::Merged(r.served_by)
        } else {
            ServedSource::Cache(r.served_by)
        }
    }

    /// Closes out a walk that started at `t0` and ended at `t`: charges the
    /// latency to the core's clock, records it, and returns it.
    pub fn finish_walk(&mut self, t0: u64, t: u64) -> u64 {
        let latency = t - t0;
        self.clock += latency;
        self.walk_stats.record(latency);
        if let Some(tracer) = &mut self.tracer {
            tracer.record(t0, TraceEventKind::Walk { latency });
        }
        latency
    }

    /// A demand data access through the fabric; advances the core's clock
    /// past the access (serialized in-order execution).
    pub fn data_access(&mut self, pa: PhysAddr) -> AccessResult {
        let r = self.fabric.access_at(pa.cache_line(), self.clock);
        self.clock += r.latency;
        r
    }

    /// Cache pressure from the SMT co-runner (no cycles consumed here).
    pub fn corunner_access(&mut self, line: CacheLineAddr) {
        let _ = self.fabric.access_at(line, self.clock);
    }

    /// L2 hit latency — what a cache-resident TLB-block lookup costs.
    #[must_use]
    pub fn l2_latency(&self) -> u64 {
        self.fabric.l2_latency()
    }

    /// Installs `line` into the shared L2 only (Victima TLB-block path).
    pub fn l2_install(&mut self, line: CacheLineAddr) {
        self.fabric.l2_install(line);
    }

    /// Probes the shared L2 for `line`, updating recency on a hit.
    pub fn l2_lookup(&mut self, line: CacheLineAddr) -> bool {
        self.fabric.l2_lookup(line)
    }

    /// Whether the shared L2 currently holds `line` (no side effects).
    #[must_use]
    pub fn l2_contains(&self, line: CacheLineAddr) -> bool {
        self.fabric.l2_contains(line)
    }

    /// Fabric-wide hierarchy statistics (shared across cores).
    #[must_use]
    pub fn hierarchy_stats(&self) -> HierarchyStats {
        self.fabric.stats()
    }

    /// The core's current cycle count.
    #[must_use]
    pub fn now(&self) -> u64 {
        self.clock
    }

    /// Advances the core's clock (non-memory work between accesses).
    pub fn advance(&mut self, cycles: u64) {
        self.clock += cycles;
    }

    /// Resets the core-private statistics (TLBs, walk accounting) and the
    /// fabric-wide hierarchy counters, keeping all cached state warm. On a
    /// multi-core machine each core resets its own window; the shared
    /// fabric counters (which feed no per-run result) simply restart from
    /// the last core's reset.
    pub fn reset_stats(&mut self) {
        self.walk_stats = WalkLatencyStats::new();
        self.walk_faults = 0;
        self.tlbs.reset_stats();
        self.fabric.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asap_os::{AsapOsConfig, ProcessConfig, VmaKind};
    use asap_types::ByteSize;
    use asap_virt::EptConfig;

    fn process() -> Process {
        Process::new(
            ProcessConfig::new(Asid(1))
                .with_heap(ByteSize::mib(16))
                .with_asap(AsapOsConfig::disabled()),
        )
    }

    #[test]
    fn process_is_a_sim_machine() {
        let mut p = process();
        let va = p.vma_of_kind(VmaKind::Heap).unwrap().start();
        assert_eq!(p.reference_translate(va), None, "untouched page");
        p.demand_page(va).unwrap();
        let reference = p.reference_translate(va);
        assert!(reference.is_some());
        assert_eq!(reference, p.translate(va).map(|t| t.phys_addr(va)));
    }

    #[test]
    fn vm_is_a_sim_machine() {
        let mut vm = VirtualMachine::new(
            ProcessConfig::new(Asid(1))
                .with_heap(ByteSize::mib(16))
                .with_compact_phys(),
            EptConfig::default(),
        );
        let va = vm.guest().vma_of_kind(VmaKind::Heap).unwrap().start();
        vm.demand_page(va).unwrap();
        assert!(vm.reference_translate(va).is_some());
    }

    #[test]
    fn core_tlb_fast_path_charges_l2_latency() {
        let mut core = EngineCore::new(
            TlbConfig::l1_dtlb(),
            TlbConfig::l2_stlb(),
            HierarchyConfig::broadwell_like(),
            0,
        );
        let va = VirtAddr::new(0x4000).unwrap();
        let vpn = va.page_number();
        assert!(core.tlb_lookup(Asid(1), vpn).is_none());
        core.tlbs.fill(
            Asid(1),
            vpn,
            TlbEntry::new(
                PhysAddr::new(0x9000).frame_number(),
                asap_types::PageSize::Size4K,
            ),
        );
        let (level, latency, _) = core.tlb_lookup(Asid(1), vpn).unwrap();
        assert_eq!(level, TlbLevel::L1);
        assert_eq!(latency, 0);
    }

    #[test]
    fn cores_share_a_fabric_but_keep_private_clocks() {
        let fabric = SharedFabric::new(HierarchyConfig::broadwell_like());
        let mut a = EngineCore::with_fabric(
            TlbConfig::l1_dtlb(),
            TlbConfig::l2_stlb(),
            fabric.clone(),
            0,
        );
        let mut b = EngineCore::with_fabric(TlbConfig::l1_dtlb(), TlbConfig::l2_stlb(), fabric, 1);
        let pa = PhysAddr::new(0x4_0000);
        let first = a.data_access(pa);
        let second = b.data_access(pa);
        assert!(
            second.latency < first.latency,
            "core B must hit the line core A's miss filled"
        );
        assert_eq!(b.now(), second.latency, "clocks are per-core");
        assert!(a.now() > b.now());
        assert_eq!(a.fabric().ports(), 2);
    }

    #[test]
    fn private_fabric_matches_the_old_internal_clock_model() {
        // The clock-mirroring contract behind the engine-parity goldens: a
        // single core stamping its local clock onto every fabric request
        // reproduces the exact latencies of the hierarchy-owned clock.
        let mut core = EngineCore::new(
            TlbConfig::l1_dtlb(),
            TlbConfig::l2_stlb(),
            HierarchyConfig::tiny_for_tests(),
            0,
        );
        let pa = PhysAddr::new(0x9000);
        let miss = core.data_access(pa);
        assert_eq!(miss.latency, 191);
        assert_eq!(core.now(), 191);
        let hit = core.data_access(pa);
        assert_eq!(hit.latency, 4);
        assert_eq!(core.now(), 195);
        core.advance(5);
        assert_eq!(core.now(), 200);
    }
}
