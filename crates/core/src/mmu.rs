//! The native-execution MMU: TLBs → PWCs → walker, with ASAP attached.

use crate::engine::{EngineCore, EngineOutcome, EngineStats, TranslationEngine, TranslationPath};
use crate::{
    AsapHwConfig, ClusterSource, MmuConfig, RangeRegisterFile, ServedByMatrix, ServedSource,
};
use asap_cache::HierarchyStats;
use asap_os::Process;
use asap_pt::{PageTable, RadixSource, SimPhysMem, Translation, WalkSource, MAX_WALK_DEPTH};
use asap_tlb::{ClusteredTlb, PageWalkCaches, TlbEntry, TlbLevel, TlbStats};
use asap_types::{Asid, CacheLineAddr, PageSize, PhysAddr, PtLevel, VirtAddr};

/// Per-level serving sources of one walk (root first): the fixed-capacity,
/// allocation-free twin of a `Vec<(PtLevel, ServedSource)>` — a walk visits
/// at most [`MAX_WALK_DEPTH`] levels.
#[derive(Debug, Clone, Copy)]
pub struct WalkSources {
    items: [(PtLevel, ServedSource); MAX_WALK_DEPTH],
    len: u8,
}

impl WalkSources {
    const FILLER: (PtLevel, ServedSource) = (PtLevel::Pl1, ServedSource::Pwc);

    /// An empty source list.
    #[must_use]
    pub fn new() -> Self {
        Self {
            items: [Self::FILLER; MAX_WALK_DEPTH],
            len: 0,
        }
    }

    fn push(&mut self, level: PtLevel, src: ServedSource) {
        self.items[usize::from(self.len)] = (level, src);
        self.len += 1;
    }

    /// The recorded `(level, source)` pairs, root first.
    #[must_use]
    pub fn as_slice(&self) -> &[(PtLevel, ServedSource)] {
        &self.items[..usize::from(self.len)]
    }

    /// Iterates over the recorded pairs.
    pub fn iter(&self) -> core::slice::Iter<'_, (PtLevel, ServedSource)> {
        self.as_slice().iter()
    }

    /// Number of recorded levels.
    #[must_use]
    pub fn len(&self) -> usize {
        usize::from(self.len)
    }

    /// Whether no level was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Default for WalkSources {
    fn default() -> Self {
        Self::new()
    }
}

impl PartialEq for WalkSources {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for WalkSources {}

impl<'a> IntoIterator for &'a WalkSources {
    type Item = &'a (PtLevel, ServedSource);
    type IntoIter = core::slice::Iter<'a, (PtLevel, ServedSource)>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// Details of one page walk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalkReport {
    /// Walk latency in cycles (the paper's headline metric).
    pub latency: u64,
    /// Per-level serving source, root first.
    pub sources: WalkSources,
    /// ASAP prefetches issued for this walk.
    pub prefetches_issued: u8,
    /// ASAP prefetches dropped for lack of an MSHR.
    pub prefetches_dropped: u8,
    /// Whether the walk ended in a page fault.
    pub fault: bool,
}

/// The outcome of one translation request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessOutcome {
    /// How the translation was served.
    pub path: TranslationPath,
    /// Translation-side latency in cycles (0 for an L1 TLB hit; the walk
    /// latency for walks).
    pub latency: u64,
    /// The resulting physical address (`None` on a page fault).
    pub phys: Option<PhysAddr>,
    /// Walk details when `path == Walk`.
    pub walk: Option<WalkReport>,
}

/// The per-core translation machine of Fig. 6: unmodified TLBs, PWCs,
/// walker and cache hierarchy, plus the ASAP range registers and prefetch
/// logic bolted onto the TLB-miss path. The TLB fast path, hierarchy clock
/// and walk accounting live in the shared `EngineCore`; this type adds
/// the native-only structures (split PWCs, clustered TLB, one range-register
/// file).
#[derive(Debug)]
pub struct Mmu {
    core: EngineCore,
    asap: AsapHwConfig,
    pwc: PageWalkCaches,
    clustered: Option<ClusteredTlb>,
    range_regs: RangeRegisterFile,
    served: ServedByMatrix,
}

impl Mmu {
    /// Builds an MMU from `config`, with a private memory fabric (the
    /// single-core machine).
    #[must_use]
    pub fn new(config: MmuConfig) -> Self {
        let fabric = asap_cache::SharedFabric::new(config.hierarchy.clone());
        Self::with_fabric(config, fabric)
    }

    /// Builds an MMU whose core attaches to an **existing** shared fabric —
    /// one core of an SMP machine. `config.hierarchy` is ignored (the
    /// fabric was already built from the machine-wide hierarchy config).
    #[must_use]
    pub fn with_fabric(config: MmuConfig, fabric: asap_cache::SharedFabric) -> Self {
        let MmuConfig {
            l1_tlb,
            l2_tlb,
            pwc,
            hierarchy: _,
            asap,
            range_registers,
            clustered_tlb,
            seed,
        } = config;
        Self {
            core: EngineCore::with_fabric(l1_tlb, l2_tlb, fabric, seed),
            pwc: PageWalkCaches::new(pwc, seed ^ 0x9C),
            clustered: clustered_tlb.map(|c| ClusteredTlb::new(c, seed ^ 0xC7)),
            range_regs: RangeRegisterFile::new(range_registers),
            asap,
            served: ServedByMatrix::new(),
        }
    }

    /// Loads the OS-provided VMA descriptors (context switch, §3.4).
    pub fn load_context(&mut self, descriptors: &[asap_os::VmaDescriptor]) {
        self.range_regs.load_context(descriptors);
    }

    /// Translates `va`, simulating the full machine: TLB lookups, the ASAP
    /// prefetches, the (possibly PWC-shortened) page walk over the cache
    /// hierarchy, and all fills. Advances the hierarchy clock by the
    /// translation latency.
    ///
    /// `cluster` supplies PTE-cluster contents for the clustered-TLB fill;
    /// pass `None` when the clustered TLB is disabled.
    pub fn translate(
        &mut self,
        mem: &SimPhysMem,
        pt: &PageTable,
        asid: Asid,
        va: VirtAddr,
        cluster: Option<&dyn ClusterSource>,
    ) -> AccessOutcome {
        self.translate_via(&RadixSource { mem, pt }, asid, va, cluster)
    }

    /// [`Mmu::translate`] over any [`WalkSource`] — the hot path hands a
    /// [`asap_pt::FlatMirror`] here; the radix table is the cold-path /
    /// reference source.
    pub fn translate_via(
        &mut self,
        src: &dyn WalkSource,
        asid: Asid,
        va: VirtAddr,
        cluster: Option<&dyn ClusterSource>,
    ) -> AccessOutcome {
        let vpn = va.page_number();
        if let Some((level, latency, entry)) = self.core.tlb_lookup(asid, vpn) {
            let path = match level {
                TlbLevel::L1 => TranslationPath::TlbL1,
                TlbLevel::L2 => TranslationPath::TlbL2,
            };
            return AccessOutcome {
                path,
                latency,
                phys: Some(entry.phys_addr(va)),
                walk: None,
            };
        }
        if let Some(ct) = &mut self.clustered {
            if let Some(frame) = ct.lookup(asid, vpn) {
                let entry = TlbEntry::new(frame, PageSize::Size4K);
                self.core.tlbs.fill(asid, vpn, entry);
                self.core.advance(crate::L2_TLB_HIT_CYCLES);
                let now = self.core.now();
                if let Some(t) = self.core.tracer_mut() {
                    t.record(now, asap_telemetry::TraceEventKind::TlbHit { level: 3 });
                }
                return AccessOutcome {
                    path: TranslationPath::ClusteredTlb,
                    latency: crate::L2_TLB_HIT_CYCLES,
                    phys: Some(entry.phys_addr(va)),
                    walk: None,
                };
            }
        }
        let (report, translation) = self.walk(src, asid, va, cluster);
        let latency = report.latency;
        // The walk trace already carries the ground-truth translation — no
        // second table descent needed.
        let phys = translation.map(|t| t.phys_addr(va));
        AccessOutcome {
            path: TranslationPath::Walk,
            latency,
            phys,
            walk: Some(report),
        }
    }

    /// The TLB-miss path: prefetch issue + walk timeline (Fig. 4b).
    fn walk(
        &mut self,
        src: &dyn WalkSource,
        asid: Asid,
        va: VirtAddr,
        cluster: Option<&dyn ClusterSource>,
    ) -> (WalkReport, Option<Translation>) {
        let t0 = self.core.now();

        // ASAP: range-register check in parallel with walker activation; on
        // a hit, prefetches launch immediately (concurrently with the
        // walker's first access).
        let mut prefetches_issued = 0u8;
        let mut prefetches_dropped = 0u8;
        if self.asap.is_enabled() {
            if let Some(desc) = self.range_regs.lookup(va).copied() {
                self.core.issue_prefetches(
                    &desc,
                    &self.asap.levels,
                    va,
                    t0,
                    &mut prefetches_issued,
                    &mut prefetches_dropped,
                );
            }
        }

        // The walker starts with a PWC probe; the deepest hit decides where
        // the radix-tree traversal resumes.
        let pwc_hit = self.pwc.lookup(asid, va);
        let start_level = pwc_hit.map_or(src.mode().root_level(), |h| h.next_level);

        // Ground truth: the full node trace. The timing model below elides
        // the PWC-covered prefix and charges the hierarchy for the rest,
        // merging with in-flight prefetches where they overlap.
        let trace = src.walk_fixed(va);
        let mut sources = WalkSources::new();
        let mut t = t0 + self.pwc.latency();
        for step in trace.steps() {
            if step.level.depth() > start_level.depth() {
                sources.push(step.level, ServedSource::Pwc);
                self.served.record(step.level, ServedSource::Pwc);
                continue;
            }
            let served = self.core.walk_access(step.entry_addr.cache_line(), &mut t);
            sources.push(step.level, served);
            self.served.record(step.level, served);
        }
        let latency = self.core.finish_walk(t0, t);

        // Fills: PWC entries for intermediate levels, TLB (and clustered
        // TLB) for the leaf. Only a completed walk installs translations —
        // prefetched data is never consumed architecturally (§3.1).
        for step in trace.steps() {
            if step.level != PtLevel::Pl1 && step.entry.is_present() && !step.entry.is_large_leaf()
            {
                self.pwc.fill(asid, va, step.level, step.entry.frame());
            }
        }
        let fault = trace.is_fault();
        let translation = trace.translation();
        if let Some(tr) = translation {
            self.core
                .tlbs
                .fill(asid, vpn_of(va), TlbEntry::new(tr.frame, tr.size));
            if tr.size == PageSize::Size4K {
                if let (Some(ct), Some(source)) = (&mut self.clustered, cluster) {
                    ct.fill_cluster(asid, vpn_of(va), &source.cluster_frames(va));
                }
            }
        } else {
            self.core.walk_faults += 1;
        }
        (
            WalkReport {
                latency,
                sources,
                prefetches_issued,
                prefetches_dropped,
                fault,
            },
            translation,
        )
    }

    /// A demand data access (the application's own load/store reaching the
    /// cache hierarchy); advances the clock.
    pub fn data_access(&mut self, pa: PhysAddr) -> asap_cache::AccessResult {
        self.core.data_access(pa)
    }

    /// Cache pressure from the SMT co-runner: perturbs cache contents
    /// without consuming this thread's cycles (the co-runner executes on
    /// the sibling hardware thread, §4).
    pub fn corunner_access(&mut self, line: CacheLineAddr) {
        self.core.corunner_access(line);
    }

    /// Walk-latency statistics (Fig. 3/8 metric).
    #[must_use]
    pub fn walk_stats(&self) -> &crate::WalkLatencyStats {
        &self.core.walk_stats
    }

    /// The served-by matrix (Fig. 9 data).
    #[must_use]
    pub fn served_matrix(&self) -> &ServedByMatrix {
        &self.served
    }

    /// L1 TLB statistics.
    #[must_use]
    pub fn l1_tlb_stats(&self) -> &TlbStats {
        self.core.tlbs.l1_stats()
    }

    /// L2 TLB statistics (MPKI source for Table 7).
    #[must_use]
    pub fn l2_tlb_stats(&self) -> &TlbStats {
        self.core.tlbs.l2_stats()
    }

    /// Clustered-TLB statistics when configured.
    #[must_use]
    pub fn clustered_stats(&self) -> Option<&TlbStats> {
        self.clustered.as_ref().map(ClusteredTlb::stats)
    }

    /// Cache-hierarchy statistics (fabric-wide: shared across the cores of
    /// an SMP machine).
    #[must_use]
    pub fn hierarchy_stats(&self) -> HierarchyStats {
        self.core.hierarchy_stats()
    }

    /// Walks that ended in a fault.
    #[must_use]
    pub fn walk_faults(&self) -> u64 {
        self.core.walk_faults
    }

    /// The current cycle count.
    #[must_use]
    pub fn now(&self) -> u64 {
        self.core.now()
    }

    /// Advances the clock (non-memory work between accesses).
    pub fn advance(&mut self, cycles: u64) {
        self.core.advance(cycles);
    }

    /// Resets all statistics, keeping state warm (post-warmup).
    pub fn reset_stats(&mut self) {
        self.core.reset_stats();
        self.served = ServedByMatrix::new();
        self.pwc.reset_stats();
        self.range_regs.reset_stats();
        if let Some(ct) = &mut self.clustered {
            ct.reset_stats();
        }
    }
}

impl TranslationEngine for Mmu {
    type Machine = Process;

    fn load_context(&mut self, machine: &Process) {
        Mmu::load_context(self, machine.vma_descriptors());
    }

    // asap-lint: hot-path
    fn translate_access(&mut self, machine: &mut Process, va: VirtAddr) -> EngineOutcome {
        let cluster = self
            .clustered
            .is_some()
            .then_some(&*machine as &dyn ClusterSource);
        // Hot path: walk the process's flat mirror instead of the radix
        // table. The differential tests pin the two to identical traces.
        let out = self.translate_via(machine.flat_mirror(), machine.asid(), va, cluster);
        EngineOutcome {
            path: out.path,
            latency: out.latency,
            phys: out.phys,
            prefetches_issued: out.walk.as_ref().map_or(0, |w| w.prefetches_issued),
            prefetches_dropped: out.walk.as_ref().map_or(0, |w| w.prefetches_dropped),
        }
    }

    fn data_access(&mut self, pa: PhysAddr) -> asap_cache::AccessResult {
        Mmu::data_access(self, pa)
    }

    fn corunner_access(&mut self, line: CacheLineAddr) {
        Mmu::corunner_access(self, line);
    }

    fn now(&self) -> u64 {
        Mmu::now(self)
    }

    fn advance(&mut self, cycles: u64) {
        Mmu::advance(self, cycles);
    }

    fn reset_stats(&mut self) {
        Mmu::reset_stats(self);
    }

    fn stats_snapshot(&self) -> EngineStats {
        EngineStats {
            walks: self.core.walk_stats.clone(),
            served: self.served,
            host_served: None,
            l2_tlb: *self.core.tlbs.l2_stats(),
            walk_faults: self.core.walk_faults,
        }
    }

    fn set_tracer(&mut self, sink: asap_telemetry::TraceSink) {
        self.core.set_tracer(sink);
    }

    fn take_tracer(&mut self) -> Option<asap_telemetry::TraceSink> {
        self.core.take_tracer()
    }

    fn collect_metrics(&self, prefix: &str, out: &mut asap_telemetry::MetricSet) {
        use asap_telemetry::Collect;
        self.stats_snapshot().collect(prefix, out);
        self.core.collect_fabric_metrics(prefix, out);
    }
}

fn vpn_of(va: VirtAddr) -> asap_types::VirtPageNum {
    va.page_number()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AsapHwConfig;
    use asap_os::{AsapOsConfig, Process, ProcessConfig, VmaKind};
    use asap_types::{Asid, ByteSize};

    fn process(asap: AsapOsConfig) -> Process {
        Process::new(
            ProcessConfig::new(Asid(1))
                .with_heap(ByteSize::mib(256))
                .with_asap(asap)
                .with_pt_scatter_run(1.0)
                .with_seed(9),
        )
    }

    fn heap_va(p: &Process, off: u64) -> VirtAddr {
        VirtAddr::new(p.vma_of_kind(VmaKind::Heap).unwrap().start().raw() + off).unwrap()
    }

    #[test]
    fn first_access_walks_then_tlb_hits() {
        let mut p = process(AsapOsConfig::disabled());
        let va = heap_va(&p, 0);
        p.touch(va).unwrap();
        let mut mmu = Mmu::new(MmuConfig::default());
        let first = mmu.translate(p.mem(), p.page_table(), p.asid(), va, None);
        assert_eq!(first.path, TranslationPath::Walk);
        assert!(first.latency > 0);
        assert_eq!(first.phys, p.translate(va).map(|t| t.phys_addr(va)));
        let second = mmu.translate(p.mem(), p.page_table(), p.asid(), va, None);
        assert_eq!(second.path, TranslationPath::TlbL1);
        assert_eq!(second.latency, 0);
        assert_eq!(mmu.walk_stats().count(), 1);
    }

    #[test]
    fn cold_walk_latency_is_four_memory_accesses() {
        let mut p = process(AsapOsConfig::disabled());
        let va = heap_va(&p, 0);
        p.touch(va).unwrap();
        let mut mmu = Mmu::new(MmuConfig::default());
        let out = mmu.translate(p.mem(), p.page_table(), p.asid(), va, None);
        let walk = out.walk.unwrap();
        // Cold caches, cold PWC: 2 (PWC probe) + 4 × 191 (memory).
        assert_eq!(walk.latency, 2 + 4 * 191);
        assert_eq!(walk.sources.len(), 4);
    }

    #[test]
    fn pwc_shortens_the_second_walk() {
        let mut p = process(AsapOsConfig::disabled());
        let a = heap_va(&p, 0);
        let b = heap_va(&p, 0x1000); // same PL1 table, different PTE
        p.touch(a).unwrap();
        p.touch(b).unwrap();
        let mut mmu = Mmu::new(MmuConfig::default());
        let _ = mmu.translate(p.mem(), p.page_table(), p.asid(), a, None);
        let out = mmu.translate(p.mem(), p.page_table(), p.asid(), b, None);
        let walk = out.walk.unwrap();
        // PL4..PL2 served by PWC, only PL1 touches the hierarchy.
        let pwc_count = walk
            .sources
            .iter()
            .filter(|(_, s)| *s == ServedSource::Pwc)
            .count();
        assert_eq!(pwc_count, 3);
        // PL1 line: same 2 MiB region, different PTE — maybe a different
        // line, but at most one hierarchy access happened.
        assert!(walk.latency <= 2 + 191);
    }

    #[test]
    fn asap_overlaps_cold_walk() {
        // With ASAP P1+P2 on an ASAP-enabled process, the cold walk's PL2
        // and PL1 accesses overlap the PL4/PL3 fetches instead of
        // serializing after them.
        let mut p = process(AsapOsConfig::pl1_and_pl2());
        let va = heap_va(&p, 0);
        p.touch(va).unwrap();
        let mut base_mmu = Mmu::new(MmuConfig::default());
        let base = base_mmu
            .translate(p.mem(), p.page_table(), p.asid(), va, None)
            .walk
            .unwrap();
        let mut asap_mmu = Mmu::new(MmuConfig::default().with_asap(AsapHwConfig::p1_p2()));
        asap_mmu.load_context(p.vma_descriptors());
        let asap = asap_mmu
            .translate(p.mem(), p.page_table(), p.asid(), va, None)
            .walk
            .unwrap();
        assert_eq!(asap.prefetches_issued, 2);
        assert!(
            asap.latency < base.latency,
            "ASAP {} !< baseline {}",
            asap.latency,
            base.latency
        );
        // Cold walk: PL4+PL3 serialize (2×191); by the time the walker
        // reaches PL2/PL1 the t0-issued prefetches have completed, so those
        // steps are L1 hits: ≈ 2 + 191 + 191 + 4 + 4.
        assert!(asap.latency <= 2 + 2 * 191 + 2 * 4);
        assert!(asap
            .sources
            .iter()
            .filter(|(l, _)| matches!(l, PtLevel::Pl1 | PtLevel::Pl2))
            .all(|(_, s)| matches!(
                s,
                ServedSource::Cache(asap_cache::ServedBy::L1) | ServedSource::Merged(_)
            )));
    }

    #[test]
    fn asap_demand_merges_with_inflight_prefetch() {
        // When the PWC covers PL4..PL2, the walker reaches PL1 almost
        // immediately — while the prefetch is still in flight — and merges
        // with its MSHR (Fig. 4b's overlap in its purest form).
        let mut p = process(AsapOsConfig::pl1_and_pl2());
        let a = heap_va(&p, 0);
        let b = heap_va(&p, 512 * 0x1000); // next 2 MiB region: fresh PL1 node
        p.touch(a).unwrap();
        p.touch(b).unwrap();
        let mut mmu = Mmu::new(MmuConfig::default().with_asap(AsapHwConfig::p1_p2()));
        mmu.load_context(p.vma_descriptors());
        let _ = mmu.translate(p.mem(), p.page_table(), p.asid(), a, None);
        let out = mmu.translate(p.mem(), p.page_table(), p.asid(), b, None);
        let walk = out.walk.unwrap();
        assert!(
            walk.sources
                .iter()
                .any(|(_, s)| matches!(s, ServedSource::Merged(_))),
            "expected an MSHR merge, got {:?}",
            walk.sources
        );
        // The exposed latency is roughly ONE memory access, the paper's
        // "single access to the memory hierarchy" claim.
        assert!(
            walk.latency <= 2 + 191 + 2 * 4 + 8,
            "latency {}",
            walk.latency
        );
    }

    #[test]
    fn asap_without_descriptors_changes_nothing() {
        // Hardware prefetch enabled but no range registers loaded (e.g. a
        // non-ASAP process): walks behave exactly like the baseline.
        let mut p = process(AsapOsConfig::disabled());
        let va = heap_va(&p, 0);
        p.touch(va).unwrap();
        let mut mmu = Mmu::new(MmuConfig::default().with_asap(AsapHwConfig::p1_p2()));
        let out = mmu.translate(p.mem(), p.page_table(), p.asid(), va, None);
        let walk = out.walk.unwrap();
        assert_eq!(walk.prefetches_issued, 0);
        assert_eq!(walk.latency, 2 + 4 * 191);
    }

    #[test]
    fn prefetches_never_change_translation_results() {
        let mut p = process(AsapOsConfig::pl1_and_pl2());
        let vas: Vec<VirtAddr> = (0..32).map(|i| heap_va(&p, i * 0x5000)).collect();
        for va in &vas {
            p.touch(*va).unwrap();
        }
        let mut base_mmu = Mmu::new(MmuConfig::default());
        let mut asap_mmu = Mmu::new(MmuConfig::default().with_asap(AsapHwConfig::p1_p2()));
        asap_mmu.load_context(p.vma_descriptors());
        for va in &vas {
            let b = base_mmu.translate(p.mem(), p.page_table(), p.asid(), *va, None);
            let a = asap_mmu.translate(p.mem(), p.page_table(), p.asid(), *va, None);
            assert_eq!(b.phys, a.phys, "ASAP must be invisible architecturally");
        }
    }

    #[test]
    fn clustered_tlb_short_circuits_walks() {
        let mut p = Process::new(
            ProcessConfig::new(Asid(1))
                .with_heap(ByteSize::mib(64))
                .with_data_cluster_fraction(1.0)
                .with_seed(4),
        );
        // Touch a whole cluster (8 pages).
        let vas: Vec<VirtAddr> = (0..8).map(|i| heap_va(&p, i * 0x1000)).collect();
        for va in &vas {
            p.touch(*va).unwrap();
        }
        let mut mmu = Mmu::new(MmuConfig::default().with_clustered_tlb());
        // Walk the first page; the fill coalesces the whole cluster.
        let first = mmu.translate(p.mem(), p.page_table(), p.asid(), vas[0], Some(&p));
        assert_eq!(first.path, TranslationPath::Walk);
        // A *different* page of the same cluster: clustered TLB hit, not a
        // walk — but only after it misses L1/L2 TLBs (it was never filled
        // there). It must yield the correct frame.
        let second = mmu.translate(p.mem(), p.page_table(), p.asid(), vas[5], Some(&p));
        assert_eq!(second.path, TranslationPath::ClusteredTlb);
        assert_eq!(
            second.phys,
            p.translate(vas[5]).map(|t| t.phys_addr(vas[5]))
        );
        assert_eq!(mmu.walk_stats().count(), 1);
    }

    #[test]
    fn fault_walk_is_counted_and_returns_none() {
        let p = process(AsapOsConfig::disabled());
        let va = heap_va(&p, 0); // never touched
        let mut mmu = Mmu::new(MmuConfig::default());
        let out = mmu.translate(p.mem(), p.page_table(), p.asid(), va, None);
        assert_eq!(out.phys, None);
        assert!(out.walk.unwrap().fault);
        assert_eq!(mmu.walk_faults(), 1);
    }

    #[test]
    fn corunner_does_not_advance_clock() {
        let mut mmu = Mmu::new(MmuConfig::default());
        let before = mmu.now();
        mmu.corunner_access(CacheLineAddr::new(0x999));
        assert_eq!(mmu.now(), before);
        mmu.data_access(PhysAddr::new(0x1000));
        assert!(mmu.now() > before);
    }

    #[test]
    fn reset_stats_clears_counters() {
        let mut p = process(AsapOsConfig::disabled());
        let va = heap_va(&p, 0);
        p.touch(va).unwrap();
        let mut mmu = Mmu::new(MmuConfig::default());
        let _ = mmu.translate(p.mem(), p.page_table(), p.asid(), va, None);
        mmu.reset_stats();
        assert_eq!(mmu.walk_stats().count(), 0);
        assert_eq!(mmu.l2_tlb_stats().accesses(), 0);
        // Contents stay warm: the next access is still a TLB hit.
        let out = mmu.translate(p.mem(), p.page_table(), p.asid(), va, None);
        assert_eq!(out.path, TranslationPath::TlbL1);
    }

    #[test]
    fn engine_trait_matches_inherent_translation() {
        // The trait surface must be a pure view over the inherent API: the
        // same access sequence through both yields identical outcomes. This
        // doubles as the MMU-level differential — the inherent path walks
        // the radix table, the trait path walks the flat mirror.
        let mut p1 = process(AsapOsConfig::pl1_and_pl2());
        let mut p2 = process(AsapOsConfig::pl1_and_pl2());
        let vas: Vec<VirtAddr> = (0..16).map(|i| heap_va(&p1, i * 0x3000)).collect();
        for va in &vas {
            p1.touch(*va).unwrap();
            p2.touch(*va).unwrap();
        }
        let mut inherent = Mmu::new(MmuConfig::default().with_asap(AsapHwConfig::p1_p2()));
        inherent.load_context(p1.vma_descriptors());
        let mut engine = Mmu::new(MmuConfig::default().with_asap(AsapHwConfig::p1_p2()));
        TranslationEngine::load_context(&mut engine, &p2);
        for va in &vas {
            let a = inherent.translate(p1.mem(), p1.page_table(), p1.asid(), *va, None);
            let b = engine.translate_access(&mut p2, *va);
            assert_eq!(a.path, b.path);
            assert_eq!(a.latency, b.latency);
            assert_eq!(a.phys, b.phys);
        }
        let snap = engine.stats_snapshot();
        assert_eq!(snap.walks, *inherent.walk_stats());
        assert_eq!(snap.walk_faults, 0);
        assert!(snap.host_served.is_none());
    }
}
