//! The page-table-walk cost predictor gating TLB-block insertion.
//!
//! Victima only spends L2 capacity on translations that are *expensive* to
//! recover by walking: a page whose walks are PWC-covered L1 hits would
//! gain nothing from a cache-resident block, while one whose walks go to
//! DRAM saves hundreds of cycles. The predictor tracks an exponentially
//! weighted average of observed walk latencies per 2 MiB region (the PL1
//! table granularity — pages sharing a PL1 table share locality and walk
//! cost) and approves insertion only above a threshold.

use asap_cache::{ReplacementKind, SetAssoc};
use asap_types::{Asid, VirtPageNum};

/// Geometry and policy of the cost predictor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PtwCostPredictorConfig {
    /// Tracked regions (total entries).
    pub entries: usize,
    /// Associativity.
    pub ways: usize,
    /// Minimum predicted walk latency (cycles) for a block to be worth
    /// inserting. The default is twice the L2 hit latency: below that, a
    /// block probe costs about as much as the walk it would save.
    pub threshold: u64,
}

impl Default for PtwCostPredictorConfig {
    fn default() -> Self {
        Self {
            entries: 512,
            ways: 4,
            threshold: 24,
        }
    }
}

/// Per-region EWMA of observed walk latency.
#[derive(Debug, Clone, Copy)]
struct CostEntry {
    avg: u64,
}

/// The PTW cost predictor: a small set-associative table keyed by
/// `(Asid, 2 MiB region)`.
///
/// # Examples
///
/// ```
/// use asap_contenders::{PtwCostPredictor, PtwCostPredictorConfig};
/// use asap_types::{Asid, VirtPageNum};
///
/// let mut p = PtwCostPredictor::new(PtwCostPredictorConfig::default(), 0);
/// let vpn = VirtPageNum::new(0x4000);
/// // No history: conservatively assume the walk is costly.
/// assert!(p.predicts_costly(Asid(1), vpn));
/// // Cheap observed walks flip the prediction.
/// for _ in 0..8 { p.record(Asid(1), vpn, 6); }
/// assert!(!p.predicts_costly(Asid(1), vpn));
/// ```
#[derive(Debug)]
pub struct PtwCostPredictor {
    table: SetAssoc<(Asid, u64), CostEntry>,
    num_sets: usize,
    threshold: u64,
}

/// 4 KiB pages per 2 MiB region (one PL1 table).
const REGION_SHIFT: u32 = 9;

impl PtwCostPredictor {
    /// Creates an empty predictor.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not yield a power-of-two set count.
    #[must_use]
    pub fn new(config: PtwCostPredictorConfig, seed: u64) -> Self {
        let num_sets = (config.entries / config.ways).max(1);
        assert!(
            num_sets.is_power_of_two(),
            "predictor set count must be a power of two"
        );
        Self {
            table: SetAssoc::new(num_sets, config.ways, ReplacementKind::Lru, seed),
            num_sets,
            threshold: config.threshold,
        }
    }

    fn key(asid: Asid, vpn: VirtPageNum) -> (Asid, u64) {
        (asid, vpn.raw() >> REGION_SHIFT)
    }

    fn set_for(&self, region: u64) -> usize {
        (region as usize) & (self.num_sets - 1)
    }

    /// Records one observed walk latency for the region containing `vpn`.
    pub fn record(&mut self, asid: Asid, vpn: VirtPageNum, latency: u64) {
        let key = Self::key(asid, vpn);
        let set = self.set_for(key.1);
        if let Some(e) = self.table.lookup_mut(set, &key) {
            // EWMA with alpha = 1/4: stable under noise, still adapts.
            e.avg = (3 * e.avg + latency) / 4;
        } else {
            self.table.insert(set, key, CostEntry { avg: latency });
        }
    }

    /// Whether a future walk for `vpn` is predicted costly enough to
    /// justify a TLB block. Unknown regions predict costly: a region with
    /// no recent history has no PWC/cache footprint either, so its next
    /// walk is long.
    #[must_use]
    pub fn predicts_costly(&mut self, asid: Asid, vpn: VirtPageNum) -> bool {
        let key = Self::key(asid, vpn);
        let set = self.set_for(key.1);
        !self
            .table
            .lookup(set, &key)
            .is_some_and(|e| e.avg < self.threshold)
    }

    /// The insertion threshold in cycles.
    #[must_use]
    pub fn threshold(&self) -> u64 {
        self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn predictor() -> PtwCostPredictor {
        PtwCostPredictor::new(PtwCostPredictorConfig::default(), 7)
    }

    #[test]
    fn unknown_regions_default_to_costly() {
        let mut p = predictor();
        assert!(p.predicts_costly(Asid(1), VirtPageNum::new(123)));
    }

    #[test]
    fn ewma_converges_down_and_up() {
        let mut p = predictor();
        let vpn = VirtPageNum::new(0x800);
        for _ in 0..12 {
            p.record(Asid(1), vpn, 6);
        }
        assert!(!p.predicts_costly(Asid(1), vpn));
        for _ in 0..12 {
            p.record(Asid(1), vpn, 700);
        }
        assert!(p.predicts_costly(Asid(1), vpn));
    }

    #[test]
    fn pages_share_their_region_history() {
        let mut p = predictor();
        let a = VirtPageNum::new(0x1200); // region 0x9
        let b = VirtPageNum::new(0x13FF); // same region
        for _ in 0..12 {
            p.record(Asid(1), a, 4);
        }
        assert!(!p.predicts_costly(Asid(1), b));
        // A different region is untouched.
        assert!(p.predicts_costly(Asid(1), VirtPageNum::new(0x1400)));
    }

    #[test]
    fn asids_are_isolated() {
        let mut p = predictor();
        let vpn = VirtPageNum::new(0x2000);
        for _ in 0..12 {
            p.record(Asid(1), vpn, 4);
        }
        assert!(p.predicts_costly(Asid(2), vpn));
    }
}
