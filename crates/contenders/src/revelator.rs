//! A Revelator-style backend: hash-based speculative translation verified
//! by the radix walk.
//!
//! Revelator (Kanellopoulos et al., 2025) attacks the *serialization* of
//! translation and data fetch: on a TLB miss the data access cannot start
//! until the walk delivers the physical address. If system software places
//! data frames with a published hash policy, hardware can compute a
//! *speculative* physical address in a few cycles and start fetching the
//! data immediately, overlapping the fetch with the verifying walk. A
//! correct guess hides the data-fetch latency entirely behind the walk; a
//! wrong guess wasted one best-effort prefetch. Nothing architectural ever
//! depends on the guess: the committed translation always comes from the
//! walk.
//!
//! The OS side is [`asap_os::SpeculationHint`]: the hash parameters of the
//! data-page layout plus per-VMA index windows, loaded on context switch.
//! Accuracy tracks physical fragmentation — groups the OS managed to place
//! on the hash-preferred (clustered) path verify, fragmentation-forced
//! scattered groups mispredict — reproducing the paper's sensitivity to
//! memory pressure.

use crate::walk::verified_walk;
use asap_cache::HierarchyConfig;
use asap_core::{
    EngineCore, EngineOutcome, EngineStats, ServedByMatrix, TranslationEngine, TranslationPath,
};
use asap_os::{Process, SpeculationHint};
use asap_tlb::{PageWalkCaches, PwcConfig, TlbConfig, TlbEntry, TlbLevel};
use asap_types::{CacheLineAddr, PhysAddr, VirtAddr};

/// Full Revelator-MMU configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RevelatorConfig {
    /// L1 D-TLB geometry.
    pub l1_tlb: TlbConfig,
    /// L2 S-TLB geometry.
    pub l2_tlb: TlbConfig,
    /// Split page-walk caches (unchanged from the baseline).
    pub pwc: PwcConfig,
    /// Cache hierarchy (Table 5).
    pub hierarchy: HierarchyConfig,
    /// Cycles the hash unit needs to produce a speculative address. The
    /// speculative fetch issues this many cycles after walk start.
    pub hash_cycles: u64,
    /// Deterministic seed.
    pub seed: u64,
}

impl Default for RevelatorConfig {
    /// The paper's Table 5 machine with a 4-cycle hash unit.
    fn default() -> Self {
        Self {
            l1_tlb: TlbConfig::l1_dtlb(),
            l2_tlb: TlbConfig::l2_stlb(),
            pwc: PwcConfig::split_default(),
            hierarchy: HierarchyConfig::broadwell_like(),
            hash_cycles: 4,
            seed: 0,
        }
    }
}

impl RevelatorConfig {
    /// Sets the seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Revelator-specific counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RevelatorStats {
    /// Speculative data fetches issued.
    pub speculations_issued: u64,
    /// Speculative fetches dropped for lack of an MSHR.
    pub speculations_dropped: u64,
    /// Guesses the verifying walk confirmed.
    pub verified_correct: u64,
    /// Guesses the verifying walk refuted (fetch wasted).
    pub mispredicted: u64,
    /// TLB misses with no published window covering the address.
    pub declined: u64,
}

impl RevelatorStats {
    /// Fraction of verified speculations that were correct.
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        let total = self.verified_correct + self.mispredicted;
        if total == 0 {
            0.0
        } else {
            self.verified_correct as f64 / total as f64
        }
    }
}

impl asap_telemetry::Collect for RevelatorStats {
    fn collect(&self, prefix: &str, out: &mut asap_telemetry::MetricSet) {
        out.counter(
            format!("{prefix}speculations_issued_total"),
            "speculative data fetches issued",
            self.speculations_issued,
        );
        out.counter(
            format!("{prefix}speculations_dropped_total"),
            "speculative fetches dropped for lack of an MSHR",
            self.speculations_dropped,
        );
        out.counter(
            format!("{prefix}verified_correct_total"),
            "guesses the verifying walk confirmed",
            self.verified_correct,
        );
        out.counter(
            format!("{prefix}mispredicted_total"),
            "guesses the verifying walk refuted",
            self.mispredicted,
        );
        out.counter(
            format!("{prefix}declined_total"),
            "TLB misses with no published window covering the address",
            self.declined,
        );
        out.gauge(
            format!("{prefix}accuracy"),
            "fraction of verified speculations that were correct",
            self.accuracy(),
        );
    }
}

/// The Revelator-style translation machine: stock TLBs, PWCs and walker,
/// plus the hash unit that overlaps a speculative data fetch with the
/// verifying walk.
#[derive(Debug)]
pub struct RevelatorMmu {
    core: EngineCore,
    pwc: PageWalkCaches,
    hash_cycles: u64,
    hint: Option<SpeculationHint>,
    served: ServedByMatrix,
    stats: RevelatorStats,
}

impl RevelatorMmu {
    /// Builds the MMU from `config`, with a private memory fabric (the
    /// single-core machine).
    #[must_use]
    pub fn new(config: RevelatorConfig) -> Self {
        let fabric = asap_cache::SharedFabric::new(config.hierarchy.clone());
        Self::with_fabric(config, fabric)
    }

    /// Builds an MMU whose core attaches to an **existing** shared fabric —
    /// one core of an SMP machine, whose speculative data fetches then
    /// contend for MSHRs and cache ways with every other core.
    /// `config.hierarchy` is ignored (the fabric already exists).
    #[must_use]
    pub fn with_fabric(config: RevelatorConfig, fabric: asap_cache::SharedFabric) -> Self {
        let RevelatorConfig {
            l1_tlb,
            l2_tlb,
            pwc,
            hierarchy: _,
            hash_cycles,
            seed,
        } = config;
        Self {
            core: EngineCore::with_fabric(l1_tlb, l2_tlb, fabric, seed),
            pwc: PageWalkCaches::new(pwc, seed ^ 0x9C),
            hash_cycles,
            hint: None,
            served: ServedByMatrix::new(),
            stats: RevelatorStats::default(),
        }
    }

    /// Loads the OS-published speculation hint (context switch).
    pub fn load_hint(&mut self, hint: SpeculationHint) {
        self.hint = Some(hint);
    }

    /// Translates `va`: TLB fast path, then hash speculation overlapped
    /// with the verifying walk. Advances the clock by the walk latency; the
    /// speculative fetch rides an MSHR and surfaces as a merge when the
    /// subsequent demand data access arrives.
    pub fn translate(&mut self, machine: &Process, va: VirtAddr) -> EngineOutcome {
        let asid = machine.asid();
        let vpn = va.page_number();
        if let Some((level, latency, entry)) = self.core.tlb_lookup(asid, vpn) {
            let path = match level {
                TlbLevel::L1 => TranslationPath::TlbL1,
                TlbLevel::L2 => TranslationPath::TlbL2,
            };
            return EngineOutcome {
                path,
                latency,
                phys: Some(entry.phys_addr(va)),
                prefetches_issued: 0,
                prefetches_dropped: 0,
            };
        }

        // The hash unit runs concurrently with walker activation; its
        // speculative data fetch issues `hash_cycles` after walk start.
        let t0 = self.core.now();
        let mut issued = 0u8;
        let mut dropped = 0u8;
        let guess = self.hint.as_ref().and_then(|h| h.predict(va));
        match guess {
            Some(pa) => {
                match self
                    .core
                    .prefetch_line_at(pa.cache_line(), t0 + self.hash_cycles)
                {
                    Some(_) => {
                        issued = 1;
                        self.stats.speculations_issued += 1;
                    }
                    None => {
                        dropped = 1;
                        self.stats.speculations_dropped += 1;
                    }
                }
            }
            None => self.stats.declined += 1,
        }

        // The verifying walk — the only source of architectural truth.
        let walk = verified_walk(
            &mut self.core,
            &mut self.pwc,
            &mut self.served,
            machine.flat_mirror(),
            asid,
            va,
        );
        let phys = walk.translation.map(|tr| {
            let entry = TlbEntry::new(tr.frame, tr.size);
            self.core.tlbs.fill(asid, vpn, entry);
            entry.phys_addr(va)
        });
        match (guess, phys) {
            (Some(pa), Some(actual)) if pa == actual => self.stats.verified_correct += 1,
            (Some(_), Some(_)) => self.stats.mispredicted += 1,
            // A guess for a page the walk proves unmapped is wrong by
            // definition — count it so every computed guess is verified.
            (Some(_), None) => self.stats.mispredicted += 1,
            (None, _) => {}
        }
        EngineOutcome {
            path: TranslationPath::Walk,
            latency: walk.latency,
            phys,
            prefetches_issued: issued,
            prefetches_dropped: dropped,
        }
    }

    /// Revelator-specific counters.
    #[must_use]
    pub fn revelator_stats(&self) -> &RevelatorStats {
        &self.stats
    }

    /// Walk-latency statistics.
    #[must_use]
    pub fn walk_stats(&self) -> &asap_core::WalkLatencyStats {
        &self.core.walk_stats
    }
}

impl TranslationEngine for RevelatorMmu {
    type Machine = Process;

    fn load_context(&mut self, machine: &Process) {
        self.load_hint(machine.speculation_hint());
    }

    fn translate_access(&mut self, machine: &mut Process, va: VirtAddr) -> EngineOutcome {
        self.translate(machine, va)
    }

    fn data_access(&mut self, pa: PhysAddr) -> asap_cache::AccessResult {
        self.core.data_access(pa)
    }

    fn corunner_access(&mut self, line: CacheLineAddr) {
        self.core.corunner_access(line);
    }

    fn now(&self) -> u64 {
        self.core.now()
    }

    fn advance(&mut self, cycles: u64) {
        self.core.advance(cycles);
    }

    fn reset_stats(&mut self) {
        self.core.reset_stats();
        self.served = ServedByMatrix::new();
        self.stats = RevelatorStats::default();
    }

    fn stats_snapshot(&self) -> EngineStats {
        EngineStats {
            walks: self.core.walk_stats.clone(),
            served: self.served,
            host_served: None,
            l2_tlb: *self.core.tlbs.l2_stats(),
            walk_faults: self.core.walk_faults,
        }
    }

    fn set_tracer(&mut self, sink: asap_telemetry::TraceSink) {
        self.core.set_tracer(sink);
    }

    fn take_tracer(&mut self) -> Option<asap_telemetry::TraceSink> {
        self.core.take_tracer()
    }

    fn collect_metrics(&self, prefix: &str, out: &mut asap_telemetry::MetricSet) {
        use asap_telemetry::Collect;
        self.stats_snapshot().collect(prefix, out);
        self.core.collect_fabric_metrics(prefix, out);
        self.stats.collect(&format!("{prefix}revelator_"), out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asap_core::SimMachine;
    use asap_os::{Process, ProcessConfig, VmaKind};
    use asap_types::{Asid, ByteSize};

    fn process(cluster_fraction: f64) -> Process {
        Process::new(
            ProcessConfig::new(Asid(1))
                .with_heap(ByteSize::mib(256))
                .with_data_cluster_fraction(cluster_fraction)
                .with_seed(5),
        )
    }

    fn heap_va(p: &Process, page: u64) -> VirtAddr {
        VirtAddr::new(p.vma_of_kind(VmaKind::Heap).unwrap().start().raw() + page * 4096).unwrap()
    }

    fn engine_with(p: &Process) -> RevelatorMmu {
        let mut mmu = RevelatorMmu::new(RevelatorConfig::default());
        TranslationEngine::load_context(&mut mmu, p);
        mmu
    }

    #[test]
    fn clustered_process_speculates_correctly() {
        let mut p = process(1.0);
        let vas: Vec<VirtAddr> = (0..32).map(|i| heap_va(&p, i * 7)).collect();
        for va in &vas {
            p.touch(*va).unwrap();
        }
        let mut mmu = engine_with(&p);
        for va in &vas {
            let out = mmu.translate(&p, *va);
            assert_eq!(out.path, TranslationPath::Walk);
            assert_eq!(out.phys, Some(p.translate(*va).unwrap().phys_addr(*va)));
        }
        let s = *mmu.revelator_stats();
        assert_eq!(s.verified_correct, 32);
        assert_eq!(s.mispredicted, 0);
        assert!((s.accuracy() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn scattered_process_mispredicts_but_commits_truth() {
        let mut p = process(0.0);
        let vas: Vec<VirtAddr> = (0..32).map(|i| heap_va(&p, i * 7)).collect();
        for va in &vas {
            p.touch(*va).unwrap();
        }
        let mut mmu = engine_with(&p);
        for va in &vas {
            let out = mmu.translate_access(&mut p, *va);
            // Misprediction never leaks into the committed translation.
            assert_eq!(out.phys, p.reference_translate(*va));
        }
        let s = *mmu.revelator_stats();
        assert_eq!(s.verified_correct, 0);
        assert_eq!(s.mispredicted, 32);
    }

    #[test]
    fn correct_speculation_hides_the_data_fetch() {
        // After a cold walk (≈ 766 cycles), the speculative fetch issued at
        // walk start has long completed: the demand data access is an L1
        // hit instead of a DRAM miss.
        let mut p = process(1.0);
        let va = heap_va(&p, 0);
        p.touch(va).unwrap();
        let mut mmu = engine_with(&p);
        let out = mmu.translate(&p, va);
        let pa = out.phys.unwrap();
        let r = TranslationEngine::data_access(&mut mmu, pa);
        assert!(
            r.latency <= 12,
            "data fetch must be hidden behind the walk, got {} cycles",
            r.latency
        );
    }

    #[test]
    fn misprediction_leaves_data_fetch_cold() {
        let mut p = process(0.0);
        let va = heap_va(&p, 0);
        p.touch(va).unwrap();
        let mut mmu = engine_with(&p);
        let out = mmu.translate(&p, va);
        let pa = out.phys.unwrap();
        let r = TranslationEngine::data_access(&mut mmu, pa);
        assert_eq!(r.latency, 191, "wrong guess cannot help the real fetch");
    }

    #[test]
    fn without_hint_speculation_declines() {
        let mut p = process(1.0);
        let va = heap_va(&p, 0);
        p.touch(va).unwrap();
        let mut mmu = RevelatorMmu::new(RevelatorConfig::default());
        let out = mmu.translate(&p, va);
        assert_eq!(out.prefetches_issued, 0);
        assert_eq!(mmu.revelator_stats().declined, 1);
        assert_eq!(out.phys, Some(p.translate(va).unwrap().phys_addr(va)));
    }

    #[test]
    fn faulting_walk_counts_the_guess_as_mispredicted() {
        // An address inside a published window but never demand-paged: the
        // hash unit guesses, the verifying walk faults, and the guess must
        // still be accounted (wrong by definition).
        let p = process(1.0);
        let va = heap_va(&p, 0);
        let mut mmu = engine_with(&p);
        let out = mmu.translate(&p, va);
        assert_eq!(out.phys, None);
        let s = *mmu.revelator_stats();
        assert_eq!(s.mispredicted, 1);
        assert_eq!(
            s.verified_correct + s.mispredicted,
            s.speculations_issued + s.speculations_dropped,
            "every computed guess must be verified"
        );
    }

    #[test]
    fn speculation_does_not_change_walk_latency() {
        // The walk timeline is untouched by speculation: a Revelator walk
        // costs exactly what the same walk costs with no hint loaded.
        let mut p1 = process(1.0);
        let mut p2 = process(1.0);
        let vas: Vec<VirtAddr> = (0..16).map(|i| heap_va(&p1, i * 3)).collect();
        for va in &vas {
            p1.touch(*va).unwrap();
            p2.touch(*va).unwrap();
        }
        let mut with_hint = engine_with(&p1);
        let mut without = RevelatorMmu::new(RevelatorConfig::default());
        for va in &vas {
            let a = with_hint.translate(&p1, *va);
            let b = without.translate(&p2, *va);
            assert_eq!(a.latency, b.latency, "va {va}");
            assert_eq!(a.phys, b.phys);
        }
    }

    #[test]
    fn accuracy_tracks_fragmentation() {
        let mut p = process(0.5);
        let vas: Vec<VirtAddr> = (0..256).map(|i| heap_va(&p, i * 8)).collect();
        for va in &vas {
            p.touch(*va).unwrap();
        }
        let mut mmu = engine_with(&p);
        for va in &vas {
            let _ = mmu.translate(&p, *va);
        }
        let acc = mmu.revelator_stats().accuracy();
        assert!(
            (acc - 0.5).abs() < 0.2,
            "accuracy {acc} should track the 0.5 cluster fraction"
        );
    }
}
