//! A Victima-style backend: evicted L2 S-TLB entries live on as TLB
//! blocks in the L2 data cache.
//!
//! Victima (Kanellopoulos et al., MICRO 2023) observes that L2 cache ways
//! are chronically underutilized while S-TLB reach is the bottleneck for
//! big-memory workloads, and repurposes cache lines to hold *TLB blocks*:
//! one line packs the translations of [`TLB_BLOCK_PAGES`] virtually
//! contiguous pages. On S-TLB eviction, a [`PtwCostPredictor`] decides
//! whether the victim's translation is costly enough to re-walk to justify
//! a block; if so the block line is installed in the L2, where it competes
//! with ordinary data under the normal replacement policy. On an S-TLB
//! miss, the core probes the L2 for the block before starting a walk: a
//! hit recovers the translation at L2-hit latency and eliminates the walk
//! entirely.
//!
//! Modelling notes:
//!
//! * Block lines are *synthetic* line addresses in a reserved tag space
//!   (bit 62 set) that no simulated physical frame can produce, so blocks
//!   and data can never alias — but they do contend for real L2 sets and
//!   ways, which is the mechanism's central trade-off.
//! * Block contents are shadowed in a software map; the cache decides
//!   *residency* (a block evicted by data pressure is lost, exactly as in
//!   the real design), the shadow supplies the payload on a resident hit.
//! * The simulated OS never remaps a page, so blocks need no shootdown
//!   path; a real implementation invalidates block lines like TLB entries.

use crate::walk::verified_walk;
use crate::{PtwCostPredictor, PtwCostPredictorConfig};
use asap_cache::HierarchyConfig;
use asap_core::{
    EngineCore, EngineOutcome, EngineStats, ServedByMatrix, TranslationEngine, TranslationPath,
};
use asap_os::Process;
use asap_tlb::{PageWalkCaches, PwcConfig, TlbConfig, TlbEntry, TlbLevel};
use asap_types::FastMap;
use asap_types::{Asid, CacheLineAddr, PageSize, PhysAddr, VirtAddr, VirtPageNum};

/// Translations per TLB block: eight 8-byte entries fill one 64-byte line,
/// covering eight virtually contiguous 4 KiB pages.
pub const TLB_BLOCK_PAGES: u64 = 8;

/// Reserved tag bit distinguishing synthetic block lines from every real
/// physical line (simulated frames stay far below 2^40, i.e. lines below
/// 2^46).
const BLOCK_LINE_TAG: u64 = 1 << 62;

/// Full Victima-MMU configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VictimaConfig {
    /// L1 D-TLB geometry.
    pub l1_tlb: TlbConfig,
    /// L2 S-TLB geometry.
    pub l2_tlb: TlbConfig,
    /// Split page-walk caches (unchanged from the baseline).
    pub pwc: PwcConfig,
    /// Cache hierarchy (Table 5); the L2 doubles as the block store.
    pub hierarchy: HierarchyConfig,
    /// The PTW cost predictor gating block insertion.
    pub predictor: PtwCostPredictorConfig,
    /// Deterministic seed.
    pub seed: u64,
}

impl Default for VictimaConfig {
    /// The paper's Table 5 machine with the default predictor.
    fn default() -> Self {
        Self {
            l1_tlb: TlbConfig::l1_dtlb(),
            l2_tlb: TlbConfig::l2_stlb(),
            pwc: PwcConfig::split_default(),
            hierarchy: HierarchyConfig::broadwell_like(),
            predictor: PtwCostPredictorConfig::default(),
            seed: 0,
        }
    }
}

impl VictimaConfig {
    /// Sets the seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Swaps the predictor policy.
    #[must_use]
    pub fn with_predictor(mut self, predictor: PtwCostPredictorConfig) -> Self {
        self.predictor = predictor;
        self
    }
}

/// Victima-specific counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VictimaStats {
    /// S-TLB misses served from a cache-resident TLB block (walks saved).
    pub block_hits: u64,
    /// S-TLB misses whose block probe missed (walk performed).
    pub block_misses: u64,
    /// Blocks installed into the L2 on S-TLB evictions.
    pub blocks_installed: u64,
    /// Evictions the cost predictor declined to insert.
    pub predictor_rejections: u64,
}

impl asap_telemetry::Collect for VictimaStats {
    fn collect(&self, prefix: &str, out: &mut asap_telemetry::MetricSet) {
        out.counter(
            format!("{prefix}block_hits_total"),
            "S-TLB misses served from a cache-resident TLB block",
            self.block_hits,
        );
        out.counter(
            format!("{prefix}block_misses_total"),
            "S-TLB misses whose block probe missed",
            self.block_misses,
        );
        out.counter(
            format!("{prefix}blocks_installed_total"),
            "blocks installed into the L2 on S-TLB evictions",
            self.blocks_installed,
        );
        out.counter(
            format!("{prefix}predictor_rejections_total"),
            "evictions the cost predictor declined to insert",
            self.predictor_rejections,
        );
    }
}

/// The Victima-style translation machine: stock TLBs, PWCs and walker,
/// plus the TLB-block path between the S-TLB and the walk.
#[derive(Debug)]
pub struct VictimaMmu {
    core: EngineCore,
    pwc: PageWalkCaches,
    predictor: PtwCostPredictor,
    /// Shadow payloads of installed blocks, keyed by (ASID, block index).
    /// Residency is decided by the L2 cache; this map only supplies the
    /// translations for lines that are still resident.
    blocks: FastMap<(Asid, u64), [Option<TlbEntry>; TLB_BLOCK_PAGES as usize]>,
    served: ServedByMatrix,
    stats: VictimaStats,
}

impl VictimaMmu {
    /// Builds the MMU from `config`, with a private memory fabric (the
    /// single-core machine).
    #[must_use]
    pub fn new(config: VictimaConfig) -> Self {
        let fabric = asap_cache::SharedFabric::new(config.hierarchy.clone());
        Self::with_fabric(config, fabric)
    }

    /// Builds an MMU whose core attaches to an **existing** shared fabric —
    /// one core of an SMP machine, whose TLB blocks then contend for the
    /// *shared* L2 with every other core's data and blocks.
    /// `config.hierarchy` is ignored (the fabric already exists).
    #[must_use]
    pub fn with_fabric(config: VictimaConfig, fabric: asap_cache::SharedFabric) -> Self {
        let VictimaConfig {
            l1_tlb,
            l2_tlb,
            pwc,
            hierarchy: _,
            predictor,
            seed,
        } = config;
        Self {
            core: EngineCore::with_fabric(l1_tlb, l2_tlb, fabric, seed),
            pwc: PageWalkCaches::new(pwc, seed ^ 0x9C),
            predictor: PtwCostPredictor::new(predictor, seed ^ 0xB1),
            blocks: FastMap::default(),
            served: ServedByMatrix::new(),
            stats: VictimaStats::default(),
        }
    }

    /// The synthetic L2 line holding the block for `(asid, block index)`.
    fn block_line(asid: Asid, block: u64) -> CacheLineAddr {
        CacheLineAddr::new(BLOCK_LINE_TAG | (u64::from(asid.0) << 45) | block)
    }

    fn block_of(vpn: VirtPageNum) -> (u64, usize) {
        (
            vpn.raw() / TLB_BLOCK_PAGES,
            (vpn.raw() % TLB_BLOCK_PAGES) as usize,
        )
    }

    /// Probes the L2 for a resident TLB block covering `vpn`. On a hit the
    /// probe costs an L2 access; on a miss it overlaps walker activation
    /// (like ASAP's range-register check) and costs nothing extra.
    fn block_lookup(&mut self, asid: Asid, vpn: VirtPageNum) -> Option<TlbEntry> {
        let (block, sub) = Self::block_of(vpn);
        let entry = *self.blocks.get(&(asid, block))?.get(sub)?;
        let entry = entry?;
        self.core
            .l2_lookup(Self::block_line(asid, block))
            .then_some(entry)
    }

    /// Offers an S-TLB victim to the block store: 4 KiB victims whose
    /// region the predictor deems costly get (merged into) a block line in
    /// the L2.
    fn offer_victim(&mut self, asid: Asid, vpn: VirtPageNum, entry: TlbEntry) {
        if entry.size != PageSize::Size4K {
            // Large-page victims have reach already; blocks hold 4K PTEs.
            return;
        }
        if !self.predictor.predicts_costly(asid, vpn) {
            self.stats.predictor_rejections += 1;
            return;
        }
        let (block, sub) = Self::block_of(vpn);
        let line = Self::block_line(asid, block);
        let resident = self.core.l2_contains(line);
        let payload = self.blocks.entry((asid, block)).or_default();
        if !resident {
            // The line is not in the L2, so any shadowed payload was lost
            // with it: a fresh install starts from an empty block rather
            // than resurrecting translations the cache evicted.
            *payload = [None; TLB_BLOCK_PAGES as usize];
        }
        payload[sub] = Some(entry);
        self.core.l2_install(line);
        self.stats.blocks_installed += 1;
    }

    /// Translates `va`: TLB fast path, then the TLB-block probe, then the
    /// verifying walk. Advances the clock by the translation latency.
    pub fn translate(&mut self, machine: &Process, va: VirtAddr) -> EngineOutcome {
        let asid = machine.asid();
        let vpn = va.page_number();
        if let Some((level, latency, entry)) = self.core.tlb_lookup(asid, vpn) {
            let path = match level {
                TlbLevel::L1 => TranslationPath::TlbL1,
                TlbLevel::L2 => TranslationPath::TlbL2,
            };
            return EngineOutcome {
                path,
                latency,
                phys: Some(entry.phys_addr(va)),
                prefetches_issued: 0,
                prefetches_dropped: 0,
            };
        }
        if let Some(entry) = self.block_lookup(asid, vpn) {
            self.stats.block_hits += 1;
            let latency = self.core.l2_latency();
            self.core.advance(latency);
            let now = self.core.now();
            if let Some(t) = self.core.tracer_mut() {
                t.record(now, asap_telemetry::TraceEventKind::TlbHit { level: 3 });
            }
            // Promote back into the TLBs; the displaced entry gets its own
            // shot at a block.
            if let Some((v_asid, v_vpn, v_entry)) =
                self.core.tlbs.fill_with_victim(asid, vpn, entry)
            {
                self.offer_victim(v_asid, v_vpn, v_entry);
            }
            return EngineOutcome {
                path: TranslationPath::TlbBlock,
                latency,
                phys: Some(entry.phys_addr(va)),
                prefetches_issued: 0,
                prefetches_dropped: 0,
            };
        }
        self.stats.block_misses += 1;
        let walk = verified_walk(
            &mut self.core,
            &mut self.pwc,
            &mut self.served,
            machine.flat_mirror(),
            asid,
            va,
        );
        self.predictor.record(asid, vpn, walk.latency);
        let phys = walk.translation.map(|tr| {
            let entry = TlbEntry::new(tr.frame, tr.size);
            if let Some((v_asid, v_vpn, v_entry)) =
                self.core.tlbs.fill_with_victim(asid, vpn, entry)
            {
                self.offer_victim(v_asid, v_vpn, v_entry);
            }
            entry.phys_addr(va)
        });
        EngineOutcome {
            path: TranslationPath::Walk,
            latency: walk.latency,
            phys,
            prefetches_issued: 0,
            prefetches_dropped: 0,
        }
    }

    /// Victima-specific counters.
    #[must_use]
    pub fn victima_stats(&self) -> &VictimaStats {
        &self.stats
    }

    /// Walk-latency statistics.
    #[must_use]
    pub fn walk_stats(&self) -> &asap_core::WalkLatencyStats {
        &self.core.walk_stats
    }
}

impl TranslationEngine for VictimaMmu {
    type Machine = Process;

    fn load_context(&mut self, _machine: &Process) {
        // Victima is OS-transparent: no descriptors, no published hints.
    }

    fn translate_access(&mut self, machine: &mut Process, va: VirtAddr) -> EngineOutcome {
        self.translate(machine, va)
    }

    fn data_access(&mut self, pa: PhysAddr) -> asap_cache::AccessResult {
        self.core.data_access(pa)
    }

    fn corunner_access(&mut self, line: CacheLineAddr) {
        self.core.corunner_access(line);
    }

    fn now(&self) -> u64 {
        self.core.now()
    }

    fn advance(&mut self, cycles: u64) {
        self.core.advance(cycles);
    }

    fn reset_stats(&mut self) {
        self.core.reset_stats();
        self.served = ServedByMatrix::new();
        self.stats = VictimaStats::default();
    }

    fn stats_snapshot(&self) -> EngineStats {
        EngineStats {
            walks: self.core.walk_stats.clone(),
            served: self.served,
            host_served: None,
            l2_tlb: *self.core.tlbs.l2_stats(),
            walk_faults: self.core.walk_faults,
        }
    }

    fn set_tracer(&mut self, sink: asap_telemetry::TraceSink) {
        self.core.set_tracer(sink);
    }

    fn take_tracer(&mut self) -> Option<asap_telemetry::TraceSink> {
        self.core.take_tracer()
    }

    fn collect_metrics(&self, prefix: &str, out: &mut asap_telemetry::MetricSet) {
        use asap_telemetry::Collect;
        self.stats_snapshot().collect(prefix, out);
        self.core.collect_fabric_metrics(prefix, out);
        self.stats.collect(&format!("{prefix}victima_"), out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asap_core::SimMachine;
    use asap_os::{Process, ProcessConfig, VmaKind};
    use asap_types::{Asid, ByteSize};

    /// A config whose S-TLB is tiny, so evictions (and thus blocks) appear
    /// after a handful of fills.
    fn tiny_stlb_config() -> VictimaConfig {
        VictimaConfig {
            l2_tlb: TlbConfig {
                name: "tiny S-TLB",
                entries: 8,
                ways: 2,
                replacement: asap_cache::ReplacementKind::Lru,
            },
            l1_tlb: TlbConfig {
                name: "tiny D-TLB",
                entries: 4,
                ways: 2,
                replacement: asap_cache::ReplacementKind::Lru,
            },
            ..VictimaConfig::default()
        }
    }

    fn process() -> Process {
        Process::new(
            ProcessConfig::new(Asid(1))
                .with_heap(ByteSize::mib(256))
                .with_seed(5),
        )
    }

    fn heap_va(p: &Process, page: u64) -> VirtAddr {
        VirtAddr::new(p.vma_of_kind(VmaKind::Heap).unwrap().start().raw() + page * 4096).unwrap()
    }

    #[test]
    fn evicted_translations_come_back_as_block_hits() {
        let mut p = process();
        // Touch far-apart pages (distinct 2 MiB regions → costly walks).
        let vas: Vec<VirtAddr> = (0..32).map(|i| heap_va(&p, i * 513)).collect();
        for va in &vas {
            p.touch(*va).unwrap();
        }
        let mut mmu = VictimaMmu::new(tiny_stlb_config());
        for va in &vas {
            let out = mmu.translate(&p, *va);
            assert_eq!(out.path, TranslationPath::Walk);
        }
        assert!(
            mmu.victima_stats().blocks_installed > 0,
            "tiny S-TLB must evict into blocks"
        );
        // Re-touch the earliest pages: long evicted from the S-TLB, but
        // their blocks are L2-resident.
        let mut hits = 0;
        for va in &vas[..8] {
            let out = mmu.translate(&p, *va);
            if out.path == TranslationPath::TlbBlock {
                hits += 1;
                assert_eq!(out.latency, 12, "block hit costs an L2 access");
            }
            assert_eq!(out.phys, Some(p.translate(*va).unwrap().phys_addr(*va)));
        }
        assert!(
            hits > 0,
            "expected block hits, stats: {:?}",
            mmu.victima_stats()
        );
    }

    #[test]
    fn block_hits_eliminate_walks() {
        let mut p = process();
        let vas: Vec<VirtAddr> = (0..24).map(|i| heap_va(&p, i * 513)).collect();
        for va in &vas {
            p.touch(*va).unwrap();
        }
        let mut mmu = VictimaMmu::new(tiny_stlb_config());
        for va in &vas {
            let _ = mmu.translate(&p, *va);
        }
        let walks_before = mmu.walk_stats().count();
        for va in &vas {
            let _ = mmu.translate(&p, *va);
        }
        let second_pass_walks = mmu.walk_stats().count() - walks_before;
        assert!(
            second_pass_walks < vas.len() as u64,
            "blocks must absorb some second-pass misses ({second_pass_walks}/{})",
            vas.len()
        );
    }

    #[test]
    fn predictor_gates_insertion() {
        let mut p = process();
        let vas: Vec<VirtAddr> = (0..32).map(|i| heap_va(&p, i * 513)).collect();
        for va in &vas {
            p.touch(*va).unwrap();
        }
        // An insertion bar no real walk reaches: nothing gets inserted.
        let mut config = tiny_stlb_config();
        config.predictor.threshold = u64::MAX;
        let mut mmu = VictimaMmu::new(config);
        for va in &vas {
            let _ = mmu.translate(&p, *va);
        }
        for va in &vas {
            let _ = mmu.translate(&p, *va);
        }
        let s = *mmu.victima_stats();
        assert_eq!(s.blocks_installed, 0);
        assert!(s.predictor_rejections > 0);
        assert_eq!(s.block_hits, 0);
    }

    #[test]
    fn cache_pressure_evicts_blocks() {
        let mut p = process();
        let vas: Vec<VirtAddr> = (0..24).map(|i| heap_va(&p, i * 513)).collect();
        for va in &vas {
            p.touch(*va).unwrap();
        }
        let mut mmu = VictimaMmu::new(tiny_stlb_config());
        for va in &vas {
            let _ = mmu.translate(&p, *va);
        }
        let installed = mmu.victima_stats().blocks_installed;
        assert!(installed > 0);
        // Thrash the whole hierarchy: every block line is evicted.
        for i in 0..400_000u64 {
            let _ = mmu.data_access(PhysAddr::new(i * 64));
        }
        let hits_before = mmu.victima_stats().block_hits;
        for va in &vas[..8] {
            let out = mmu.translate(&p, *va);
            assert_ne!(out.path, TranslationPath::TlbBlock);
        }
        assert_eq!(mmu.victima_stats().block_hits, hits_before);
    }

    #[test]
    fn reinstall_after_eviction_does_not_resurrect_stale_entries() {
        let mut mmu = VictimaMmu::new(VictimaConfig::default());
        let asid = Asid(1);
        let a = VirtPageNum::new(8);
        let b = VirtPageNum::new(9); // same 8-page block as `a`
        let ea = TlbEntry::new(asap_types::PhysFrameNum::new(100), PageSize::Size4K);
        let eb = TlbEntry::new(asap_types::PhysFrameNum::new(101), PageSize::Size4K);
        mmu.offer_victim(asid, a, ea); // unknown region → predicted costly
        mmu.offer_victim(asid, b, eb);
        assert_eq!(mmu.block_lookup(asid, a), Some(ea));
        assert_eq!(mmu.block_lookup(asid, b), Some(eb));
        // Evict the block line with data pressure: both payloads are lost.
        for i in 0..400_000u64 {
            let _ = mmu.data_access(PhysAddr::new(i * 64));
        }
        assert_eq!(mmu.block_lookup(asid, a), None);
        // Re-installing one page must not resurrect the other's payload.
        mmu.offer_victim(asid, a, ea);
        assert_eq!(mmu.block_lookup(asid, a), Some(ea));
        assert_eq!(
            mmu.block_lookup(asid, b),
            None,
            "stale sub-entry resurrected after cache eviction"
        );
    }

    #[test]
    fn committed_translations_match_reference() {
        let mut p = process();
        let vas: Vec<VirtAddr> = (0..48).map(|i| heap_va(&p, i * 37)).collect();
        for va in &vas {
            p.touch(*va).unwrap();
        }
        let mut mmu = VictimaMmu::new(tiny_stlb_config());
        for pass in 0..3 {
            for va in &vas {
                let out = mmu.translate_access(&mut p, *va);
                assert_eq!(out.phys, p.reference_translate(*va), "pass {pass} va {va}");
            }
        }
    }

    #[test]
    fn reset_stats_keeps_blocks_warm() {
        let mut p = process();
        let vas: Vec<VirtAddr> = (0..24).map(|i| heap_va(&p, i * 513)).collect();
        for va in &vas {
            p.touch(*va).unwrap();
        }
        let mut mmu = VictimaMmu::new(tiny_stlb_config());
        for va in &vas {
            let _ = mmu.translate(&p, *va);
        }
        TranslationEngine::reset_stats(&mut mmu);
        assert_eq!(mmu.victima_stats().blocks_installed, 0);
        let mut block_hits = 0;
        for va in &vas[..8] {
            if mmu.translate(&p, *va).path == TranslationPath::TlbBlock {
                block_hits += 1;
            }
        }
        assert!(block_hits > 0, "blocks survive a stats reset");
    }
}
