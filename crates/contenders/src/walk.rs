//! The shared verifying 1D walk both contender backends run.
//!
//! Neither contender modifies the radix walk itself (that is ASAP's trick);
//! they attack the miss *before* the walk (Victima) or overlap the *data*
//! fetch with it (Revelator). Both therefore need the stock walk timeline:
//! PWC probe, PWC-elided prefix, hierarchy accesses for the rest, PWC and
//! TLB fills — exactly the baseline path of `asap_core::Mmu`, shared here
//! so the two backends cannot drift apart.

use asap_core::{EngineCore, ServedByMatrix};
use asap_pt::{Translation, WalkSource};
use asap_tlb::PageWalkCaches;
use asap_types::{Asid, PtLevel, VirtAddr};

/// What one verifying walk produced.
#[derive(Debug, Clone, Copy)]
pub(crate) struct VerifiedWalk {
    /// Walk latency in cycles (charged to the engine clock).
    pub latency: u64,
    /// The verified translation (`None` on a page fault).
    pub translation: Option<Translation>,
}

/// Runs one baseline page walk for `va` over the shared core: PWC probe,
/// timed hierarchy accesses, PWC fills, walk/fault accounting and the
/// served-by matrix. Does **not** fill the TLB — the caller owns that step
/// (Victima needs the eviction hook, Revelator a plain fill).
pub(crate) fn verified_walk(
    core: &mut EngineCore,
    pwc: &mut PageWalkCaches,
    served: &mut ServedByMatrix,
    src: &dyn WalkSource,
    asid: Asid,
    va: VirtAddr,
) -> VerifiedWalk {
    let t0 = core.now();
    let pwc_hit = pwc.lookup(asid, va);
    let start_level = pwc_hit.map_or(src.mode().root_level(), |h| h.next_level);

    let trace = src.walk_fixed(va);
    let mut t = t0 + pwc.latency();
    for step in trace.steps() {
        if step.level.depth() > start_level.depth() {
            served.record(step.level, asap_core::ServedSource::Pwc);
            continue;
        }
        let served_by = core.walk_access(step.entry_addr.cache_line(), &mut t);
        served.record(step.level, served_by);
    }
    let latency = core.finish_walk(t0, t);

    for step in trace.steps() {
        if step.level != PtLevel::Pl1 && step.entry.is_present() && !step.entry.is_large_leaf() {
            pwc.fill(asid, va, step.level, step.entry.frame());
        }
    }
    let translation = trace.translation();
    if translation.is_none() {
        core.walk_faults += 1;
    }
    VerifiedWalk {
        latency,
        translation,
    }
}
