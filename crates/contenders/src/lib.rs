//! Competitor translation backends for head-to-head comparison with ASAP.
//!
//! The paper's evaluation (§5) positions ASAP against alternative ways of
//! attacking translation overhead. This crate models two of the strongest
//! alternatives from the literature as full
//! [`TranslationEngine`](asap_core::TranslationEngine) backends,
//! so the scenario registry can run workload × {baseline, ASAP, Victima,
//! Revelator} matrices through the one generic driver loop:
//!
//! * [`VictimaMmu`] — a Victima-style design (Kanellopoulos et al., MICRO
//!   2023): evicted L2 S-TLB entries are transparently parked as *TLB
//!   blocks* in the L2 data cache, gated by a [`PtwCostPredictor`] so only
//!   translations that are costly to re-walk spend cache capacity. Extends
//!   *reach* — walks are eliminated when the block survives cache pressure.
//! * [`RevelatorMmu`] — a Revelator-style design (Kanellopoulos et al.,
//!   2025): system software publishes its hash-placement parameters
//!   ([`asap_os::SpeculationHint`]); on a TLB miss the core computes a
//!   speculative physical address in a few cycles and fetches *data* from
//!   it while the conventional radix walk verifies the guess. Walks are not
//!   shortened — the data fetch is overlapped with them.
//!
//! Both backends embed the same [`EngineCore`](asap_core::EngineCore)
//! plumbing as the paper's own MMUs and are architecturally invisible:
//! every committed translation comes from the verifying page walk, never
//! from a block or a hash guess alone (pinned by
//! `tests/prop_contenders_correctness.rs`).
//!
//! # Examples
//!
//! ```
//! use asap_contenders::{VictimaConfig, VictimaMmu};
//! use asap_core::{SimMachine, TranslationEngine};
//! use asap_os::{Process, ProcessConfig, VmaKind};
//! use asap_types::{Asid, ByteSize, VirtAddr};
//!
//! let mut process = Process::new(
//!     ProcessConfig::new(Asid(1)).with_heap(ByteSize::mib(64)),
//! );
//! let va = process.vma_of_kind(VmaKind::Heap).unwrap().start();
//! process.touch(va).unwrap();
//!
//! let mut mmu = VictimaMmu::new(VictimaConfig::default());
//! TranslationEngine::load_context(&mut mmu, &process);
//! let out = mmu.translate_access(&mut process, va);
//! assert_eq!(out.phys, process.reference_translate(va));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod predictor;
mod revelator;
mod victima;
mod walk;

pub use predictor::{PtwCostPredictor, PtwCostPredictorConfig};
pub use revelator::{RevelatorConfig, RevelatorMmu, RevelatorStats};
pub use victima::{VictimaConfig, VictimaMmu, VictimaStats, TLB_BLOCK_PAGES};

/// Which contender backend a run specification selects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContenderKind {
    /// Victima-style cache-resident TLB blocks.
    Victima,
    /// Revelator-style hash-based speculative translation.
    Revelator,
}

impl ContenderKind {
    /// All contender backends, in report order.
    pub const ALL: [ContenderKind; 2] = [ContenderKind::Victima, ContenderKind::Revelator];

    /// The report label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ContenderKind::Victima => "Victima",
            ContenderKind::Revelator => "Revelator",
        }
    }
}

impl core::fmt::Display for ContenderKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}
