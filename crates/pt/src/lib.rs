//! A bit-accurate x86-64 radix-tree page table for the ASAP reproduction.
//!
//! The paper (§2.1, Fig. 1) builds on the standard Linux/x86 four-level page
//! table; its §3.5 extension anticipates five-level tables. This crate
//! implements that substrate faithfully:
//!
//! * [`Pte`] — 64-bit page-table entries with the architectural flag bits
//!   (present, writable, user, accessed, dirty, page-size, no-execute);
//! * [`PtFrame`] / [`SimPhysMem`] — sparse simulated physical memory holding
//!   page-table pages only (data pages need no backing store: the simulator
//!   cares about *addresses*, not contents);
//! * [`PageTable`] — map/unmap/translate with 4 KiB, 2 MiB and 1 GiB pages,
//!   under both [`PagingMode`]s, with page-table-node placement delegated to
//!   a [`PtNodeAllocator`] (the hook through which the OS crate implements
//!   the paper's contiguous, sorted ASAP regions — or the scattered buddy
//!   baseline);
//! * [`Walker`] — a software model of the hardware page-walker state machine
//!   that records the physical address of every node it visits, which is
//!   exactly the input the walk-timing model needs;
//! * [`PtCensus`] — per-level page counts, footprints and physical
//!   contiguous-region counts (the paper's Table 2).
//!
//! # Examples
//!
//! ```
//! use asap_pt::{BumpNodeAllocator, PageTable, PteFlags, SimPhysMem};
//! use asap_types::{PageSize, PagingMode, PhysFrameNum, VirtAddr};
//!
//! let mut mem = SimPhysMem::new();
//! let mut alloc = BumpNodeAllocator::new(PhysFrameNum::new(0x100));
//! let mut pt = PageTable::new(PagingMode::FourLevel, &mut mem, &mut alloc);
//!
//! let va = VirtAddr::new(0x7000_0000_0000).unwrap();
//! pt.map(&mut mem, &mut alloc, va, PhysFrameNum::new(0x42), PageSize::Size4K,
//!        PteFlags::user_data()).unwrap();
//!
//! let t = pt.translate(&mem, va).unwrap();
//! assert_eq!(t.frame, PhysFrameNum::new(0x42));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod census;
mod entry;
mod error;
mod flat;
mod frame;
mod phys_mem;
mod table;
mod walker;

pub use census::{ContigStats, PtCensus};
pub use entry::{Pte, PteFlags};
pub use error::PtError;
// The deterministic hasher moved to `asap-types` (its shared home, so
// allocator/OS/contender crates use the same maps); re-exported here for
// the pre-existing `asap_pt::FastMap` import paths.
pub use asap_types::{FastBuildHasher, FastHasher, FastMap};
pub use flat::{FlatMirror, RadixSource, WalkSource};
pub use frame::PtFrame;
pub use phys_mem::SimPhysMem;
pub use table::{BumpNodeAllocator, PageTable, PtNodeAllocator, Translation};
pub use walker::{FixedWalk, WalkOutcome, WalkStep, WalkTrace, Walker, MAX_WALK_DEPTH};

pub use asap_types::PagingMode;
