//! Page-table operation errors.

use asap_types::{PtLevel, VirtAddr};

/// Errors returned by [`crate::PageTable`] operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PtError {
    /// The virtual address is outside the paging mode's address width.
    OutOfRange(VirtAddr),
    /// The address or frame is not aligned to the requested page size.
    Misaligned(VirtAddr),
    /// A mapping already exists for the page containing the address.
    AlreadyMapped(VirtAddr),
    /// No mapping exists for the page containing the address.
    NotMapped(VirtAddr),
    /// The walk ran into a large-page leaf at the given level while needing
    /// to descend further (e.g. mapping a 4 KiB page inside an existing
    /// 2 MiB mapping).
    LargePageConflict {
        /// The faulting virtual address.
        va: VirtAddr,
        /// The level holding the conflicting large-page leaf.
        level: PtLevel,
    },
}

impl core::fmt::Display for PtError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PtError::OutOfRange(va) => write!(f, "virtual address {va} exceeds paging mode"),
            PtError::Misaligned(va) => write!(f, "address {va} not aligned to page size"),
            PtError::AlreadyMapped(va) => write!(f, "page containing {va} is already mapped"),
            PtError::NotMapped(va) => write!(f, "page containing {va} is not mapped"),
            PtError::LargePageConflict { va, level } => {
                write!(f, "large-page leaf at {level} conflicts with mapping {va}")
            }
        }
    }
}

impl std::error::Error for PtError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let va = VirtAddr::new(0x1000).unwrap();
        assert!(PtError::OutOfRange(va).to_string().contains("exceeds"));
        assert!(PtError::Misaligned(va).to_string().contains("aligned"));
        assert!(PtError::AlreadyMapped(va).to_string().contains("already"));
        assert!(PtError::NotMapped(va).to_string().contains("not mapped"));
        let e = PtError::LargePageConflict {
            va,
            level: PtLevel::Pl2,
        };
        assert!(e.to_string().contains("PL2"));
    }
}
