//! A flat, arena-backed mirror of the radix page table.
//!
//! The radix tables in [`crate::PageTable`] + [`crate::SimPhysMem`] stay the
//! ground truth: they are what the OS writes, what ASAP prefetches read, and
//! what the census measures. But resolving a translation through them costs a
//! `HashMap` frame lookup per level, which dominates the simulator's inner
//! loop. [`FlatMirror`] is a *derived index* over the same entries: one
//! contiguous `Vec` arena of node slots where each present non-leaf entry
//! carries the arena index of its child, so a descent is four (or five)
//! array reads with no hashing and no allocation.
//!
//! The mirror is kept coherent by re-syncing the affected virtual path after
//! every radix mutation ([`FlatMirror::sync_va`]) or by a full
//! [`FlatMirror::rebuild`]. Equivalence with the radix walker is pinned
//! property-style in `tests/prop_flat_walk_equivalence.rs`; the timing model
//! consumes either through the [`WalkSource`] seam, so the walk *trace* —
//! every entry address the hardware would touch — is identical by
//! construction (node physical frames are stored in the arena).

use crate::walker::{FixedWalk, WalkOutcome, WalkStep, Walker};
use crate::{PageTable, Pte, SimPhysMem, Translation};
use asap_types::FastMap;
use asap_types::{PageSize, PagingMode, PhysFrameNum, PtLevel, VirtAddr, PTE_SIZE};

/// Anything the timing model can walk: the authoritative radix tables
/// ([`RadixSource`]) or the flat mirror ([`FlatMirror`]).
///
/// Both MMU families (the ASAP [`crate::Walker`]-based one and the contender
/// walkers) consume this seam, which is what makes the differential test
/// meaningful: swapping the source must not change a single statistic.
pub trait WalkSource {
    /// The paging mode of the underlying table.
    fn mode(&self) -> PagingMode;

    /// Full walk for `va`, recording every node access.
    fn walk_fixed(&self, va: VirtAddr) -> FixedWalk;

    /// Resolves `va` without recording the trace.
    fn translate(&self, va: VirtAddr) -> Option<Translation>;
}

/// The authoritative radix tables viewed through the [`WalkSource`] seam.
#[derive(Debug, Clone, Copy)]
pub struct RadixSource<'a> {
    /// Simulated physical memory holding the table frames.
    pub mem: &'a SimPhysMem,
    /// The radix table handle.
    pub pt: &'a PageTable,
}

impl WalkSource for RadixSource<'_> {
    fn mode(&self) -> PagingMode {
        self.pt.mode()
    }

    fn walk_fixed(&self, va: VirtAddr) -> FixedWalk {
        Walker::walk_fixed(self.mem, self.pt, va)
    }

    fn translate(&self, va: VirtAddr) -> Option<Translation> {
        self.pt.translate(self.mem, va)
    }
}

/// Sentinel child slot meaning "no mirrored child" (not-present entries and
/// leaves). Slot 0 always holds the root, which is never any entry's child,
/// so 0 is free as the sentinel — and it makes the all-zeros bit pattern a
/// valid [`FlatEntry::EMPTY`].
const NO_CHILD: u32 = 0;

/// One mirrored page-table entry: the raw architectural bits plus the arena
/// slot of the child node (for present non-leaf entries).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct FlatEntry {
    raw: u64,
    child: u32,
}

impl FlatEntry {
    const EMPTY: Self = Self {
        raw: 0,
        child: NO_CHILD,
    };
}

/// Populated entries a node keeps inline before spilling to the full
/// 512-entry array.
///
/// Scatter-placed PT nodes — every EPT node backing the hypervisor's
/// scattered guest-PT-node gPAs, and guest nodes under the scatter ablation
/// — only ever hold a handful of present entries, and a fresh node is
/// created on nearly every fault. Keeping those inline makes node creation
/// allocation-free instead of an 8 KiB zeroed allocation per node; dense
/// nodes (a demand-paged heap's PL1 nodes, upper levels) spill to the
/// direct-indexed array the first time they outgrow the inline ways.
const INLINE_WAYS: usize = 16;

/// A node's entry storage: inline-sparse or spilled-dense.
///
/// The size asymmetry between the variants is deliberate: the inline
/// variant's bulk is what keeps node creation off the allocator, and
/// nodes live in one arena `Vec`, so the "wasted" bytes of a spilled
/// node's inline slot are a per-node constant, not a per-entry cost.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
enum NodeEntries {
    /// Up to [`INLINE_WAYS`] populated entries, unsorted; looked up by a
    /// linear scan of the index array. Absent indices read as
    /// [`FlatEntry::EMPTY`], exactly like never-written slots of the full
    /// array.
    Inline {
        len: u8,
        idxs: [u16; INLINE_WAYS],
        entries: [FlatEntry; INLINE_WAYS],
    },
    /// Direct-indexed full array (all 512 entries).
    Full(Box<[FlatEntry]>),
}

/// One mirrored node: its physical frame (so walk traces carry the real
/// entry addresses) and its entries.
#[derive(Debug, Clone)]
struct FlatNode {
    frame: PhysFrameNum,
    entries: NodeEntries,
}

impl FlatNode {
    fn new(frame: PhysFrameNum) -> Self {
        Self {
            frame,
            entries: NodeEntries::Inline {
                len: 0,
                idxs: [0; INLINE_WAYS],
                entries: [FlatEntry::EMPTY; INLINE_WAYS],
            },
        }
    }

    /// Reads entry `idx`, defaulting to [`FlatEntry::EMPTY`] when absent.
    #[inline]
    fn get(&self, idx: usize) -> FlatEntry {
        match &self.entries {
            NodeEntries::Inline { len, idxs, entries } => {
                let idx = idx as u16;
                for i in 0..*len as usize {
                    if idxs[i] == idx {
                        return entries[i];
                    }
                }
                FlatEntry::EMPTY
            }
            NodeEntries::Full(arr) => arr[idx],
        }
    }

    /// Writes entry `idx`, spilling inline storage to the full array when
    /// the inline ways are exhausted.
    fn set(&mut self, idx: usize, e: FlatEntry) {
        match &mut self.entries {
            NodeEntries::Inline { len, idxs, entries } => {
                let idx16 = idx as u16;
                for i in 0..*len as usize {
                    if idxs[i] == idx16 {
                        entries[i] = e;
                        return;
                    }
                }
                let n = *len as usize;
                if n < INLINE_WAYS {
                    idxs[n] = idx16;
                    entries[n] = e;
                    *len += 1;
                    return;
                }
                // Filled on the heap: building the array on the stack and
                // boxing it would zero 8 KiB twice (fill + copy).
                let mut arr =
                    vec![FlatEntry::EMPTY; PageTable::ENTRIES_PER_NODE].into_boxed_slice();
                for i in 0..INLINE_WAYS {
                    arr[idxs[i] as usize] = entries[i];
                }
                arr[idx] = e;
                self.entries = NodeEntries::Full(arr);
            }
            NodeEntries::Full(arr) => arr[idx] = e,
        }
    }
}

/// 4-KiB pages per residency chunk: 2^15 pages = 128 MiB of VA per chunk.
///
/// Small enough that a freshly touched region (the EPT scatters host PT
/// nodes across a huge guest-physical range, so nearly every PT-node page
/// opens a new chunk) costs a 4 KiB zeroed allocation, not a 32 KiB one;
/// large enough that a dense 32 GiB heap still needs only 256 chunks.
const CHUNK_PAGE_BITS: u32 = 15;
/// Words per chunk bitmap (4 KiB).
const CHUNK_WORDS: usize = 1 << (CHUNK_PAGE_BITS - 6);
/// Page-index mask within a chunk.
const CHUNK_PAGE_MASK: u64 = (1 << CHUNK_PAGE_BITS) - 1;

/// A chunked bitmap of mapped 4-KiB pages.
///
/// The per-access residency check ("is this VA already demand-paged?") is
/// the single hottest query in the simulator; even one hash probe into a
/// multi-megabyte leaf map is a DRAM miss per access. A process only ever
/// touches a bounded set of VA regions, so this keeps one small bitmap per
/// touched region behind a small (cache-hot) chunk map: a test is one
/// small-map probe plus one bit test in a cache-resident bitmap. Chunks are
/// heap-allocated zeroed (`vec![0; ..]` takes the calloc path) so opening a
/// region never pays a stack-zero-and-copy of the whole bitmap.
///
/// Ranges recorded here are always page-size aligned (4 KiB / 2 MiB /
/// 1 GiB leaves, or whole entry spans for holes), so a sub-chunk range
/// never straddles a chunk boundary.
#[derive(Debug, Clone, Default)]
struct ResidencyMap {
    chunks: FastMap<u64, Box<[u64]>>,
}

impl ResidencyMap {
    /// Whether the 4-KiB page containing `va` is marked mapped.
    #[inline]
    fn test(&self, va: u64) -> bool {
        let page = va >> 12;
        match self.chunks.get(&(page >> CHUNK_PAGE_BITS)) {
            Some(chunk) => {
                let bit = (page & CHUNK_PAGE_MASK) as usize;
                chunk[bit >> 6] & (1u64 << (bit & 63)) != 0
            }
            None => false,
        }
    }

    /// Marks `pages` 4-KiB pages starting at the page-aligned `base_va`.
    fn set_pages(&mut self, base_va: u64, pages: u64) {
        let mut page = base_va >> 12;
        let end = page + pages;
        while page < end {
            let chunk = self
                .chunks
                .entry(page >> CHUNK_PAGE_BITS)
                .or_insert_with(|| vec![0u64; CHUNK_WORDS].into_boxed_slice());
            let bit = (page & CHUNK_PAGE_MASK) as usize;
            let n = (end - page).min((1 << CHUNK_PAGE_BITS) - bit as u64) as usize;
            if bit % 64 == 0 && n % 64 == 0 {
                chunk[bit >> 6..(bit + n) >> 6].fill(!0);
            } else {
                for b in bit..bit + n {
                    chunk[b >> 6] |= 1u64 << (b & 63);
                }
            }
            page += n as u64;
        }
    }

    /// Clears `pages` 4-KiB pages starting at the page-aligned `base_va`.
    fn clear_pages(&mut self, base_va: u64, pages: u64) {
        let first = base_va >> 12;
        if pages >= 1 << CHUNK_PAGE_BITS {
            // Whole-chunk spans (big holes): drop the chunks outright.
            let c0 = first >> CHUNK_PAGE_BITS;
            let c1 = (first + pages) >> CHUNK_PAGE_BITS;
            self.chunks.retain(|&c, _| c < c0 || c >= c1);
            return;
        }
        if let Some(chunk) = self.chunks.get_mut(&(first >> CHUNK_PAGE_BITS)) {
            let bit = (first & CHUNK_PAGE_MASK) as usize;
            let n = pages as usize;
            if bit % 64 == 0 && n % 64 == 0 {
                chunk[bit >> 6..(bit + n) >> 6].fill(0);
            } else {
                for b in bit..bit + n {
                    chunk[b >> 6] &= !(1u64 << (b & 63));
                }
            }
        }
    }
}

/// The arena of mirrored nodes. Slot 0 is always the root.
///
/// # Invariant
///
/// After every radix `map`/`unmap` the caller re-syncs the touched virtual
/// path with [`FlatMirror::sync_va`] (or rebuilds wholesale). The mirror
/// never accepts writes of its own — it is an index, not a second table.
#[derive(Debug, Clone)]
pub struct FlatMirror {
    mode: PagingMode,
    nodes: Vec<FlatNode>,
    /// Table frame → arena slot, used only while syncing (never on the
    /// translate/walk path).
    slots: FastMap<u64, u32>,
    /// Bitmap of mapped 4-KiB pages — the [`FlatMirror::is_mapped`] fast
    /// path. Maintained by the terminal branch of `sync_va` and by
    /// `rebuild`, exactly mirroring leaf presence in the radix table.
    resident: ResidencyMap,
}

impl FlatMirror {
    /// Creates a mirror of `pt` reflecting its current (typically empty)
    /// state. Call [`FlatMirror::rebuild`] afterwards if `pt` already has
    /// mappings.
    #[must_use]
    pub fn new(pt: &PageTable) -> Self {
        let mut mirror = Self {
            mode: pt.mode(),
            nodes: Vec::new(),
            slots: FastMap::default(),
            resident: ResidencyMap::default(),
        };
        let root = mirror.slot_for(pt.root());
        debug_assert_eq!(root, 0);
        mirror
    }

    /// The paging mode being mirrored.
    #[must_use]
    pub fn mode(&self) -> PagingMode {
        self.mode
    }

    /// Number of mirrored nodes (equals the radix table's materialized
    /// table-frame count when coherent).
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Approximate host bytes held by the arena.
    #[must_use]
    pub fn approx_host_bytes(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| {
                core::mem::size_of::<FlatNode>()
                    + match &n.entries {
                        NodeEntries::Inline { .. } => 0,
                        NodeEntries::Full(_) => {
                            PageTable::ENTRIES_PER_NODE * core::mem::size_of::<FlatEntry>()
                        }
                    }
            })
            .sum()
    }

    fn slot_for(&mut self, frame: PhysFrameNum) -> u32 {
        if let Some(&slot) = self.slots.get(&frame.raw()) {
            return slot;
        }
        let slot = u32::try_from(self.nodes.len()).expect("arena slots fit in u32");
        self.nodes.push(FlatNode::new(frame));
        self.slots.insert(frame.raw(), slot);
        slot
    }

    /// Re-mirrors the radix path for `va` after a `map`/`unmap` touched it.
    ///
    /// Sound because radix mutations only ever change entries along the
    /// descent path of the mutated VA: `map` installs intermediates and one
    /// leaf, `unmap` clears one leaf, and existing intermediate entries are
    /// never rewritten.
    pub fn sync_va(&mut self, mem: &SimPhysMem, pt: &PageTable, va: VirtAddr) {
        debug_assert_eq!(pt.mode(), self.mode, "mirror/table mode mismatch");
        debug_assert_eq!(pt.root(), self.nodes[0].frame, "mirror/table root mismatch");
        if !self.mode.contains(va) {
            return;
        }
        let mut node = pt.root();
        let mut slot = 0u32;
        for level in self.mode.levels() {
            let idx = level.index_of(va) as usize;
            let entry = mem.read_entry(PageTable::entry_addr(node, level, va));
            if entry.is_present() && level != PtLevel::Pl1 && !entry.is_large_leaf() {
                // Unchanged intermediate with a linked child — the common
                // case (mapping a sibling under an existing chain) — needs
                // no frame→slot lookup at all.
                let cur = self.nodes[slot as usize].get(idx);
                let child = if cur.raw == entry.raw() && cur.child != NO_CHILD {
                    cur.child
                } else {
                    let child = self.slot_for(entry.frame());
                    self.nodes[slot as usize].set(
                        idx,
                        FlatEntry {
                            raw: entry.raw(),
                            child,
                        },
                    );
                    child
                };
                node = entry.frame();
                slot = child;
            } else {
                // Leaf or hole: terminal either way.
                self.nodes[slot as usize].set(
                    idx,
                    FlatEntry {
                        raw: entry.raw(),
                        child: NO_CHILD,
                    },
                );
                self.cache_terminal(va, level, entry);
                return;
            }
        }
    }

    /// Updates the residency bitmap after a terminal `sync_va` write at
    /// `level`.
    ///
    /// A present leaf marks its whole span. A hole clears the full entry
    /// span at `level`: the descent reaching a hole there means no coarser
    /// leaf covers `va` (it would have terminated the descent earlier) and
    /// nothing finer is reachable beneath it.
    fn cache_terminal(&mut self, va: VirtAddr, level: PtLevel, entry: Pte) {
        if entry.is_present() {
            if let Some(size) = PageSize::from_leaf_level(level) {
                let base = (va.raw() >> size.shift()) << size.shift();
                self.resident.set_pages(base, 1 << (size.shift() - 12));
                return;
            }
        }
        let shift = level.index_shift();
        self.resident
            .clear_pages((va.raw() >> shift) << shift, 1 << (shift - 12));
    }

    /// Discards the arena and re-mirrors the whole radix table.
    pub fn rebuild(&mut self, mem: &SimPhysMem, pt: &PageTable) {
        self.mode = pt.mode();
        self.nodes.clear();
        self.slots.clear();
        self.resident = ResidencyMap::default();
        let root = self.slot_for(pt.root());
        let mut stack = vec![(root, pt.mode().root_level(), 0u64)];
        while let Some((slot, level, va_base)) = stack.pop() {
            let frame = self.nodes[slot as usize].frame;
            for idx in 0..PageTable::ENTRIES_PER_NODE {
                let addr = frame.base_addr().add(idx as u64 * PTE_SIZE);
                let entry_va = va_base | ((idx as u64) << level.index_shift());
                let entry = mem.read_entry(addr);
                let flat = if entry.is_present() && level != PtLevel::Pl1 && !entry.is_large_leaf()
                {
                    let child = self.slot_for(entry.frame());
                    stack.push((
                        child,
                        level.child().expect("non-leaf level has a child"),
                        entry_va,
                    ));
                    FlatEntry {
                        raw: entry.raw(),
                        child,
                    }
                } else {
                    if entry.is_present() {
                        if let Some(size) = PageSize::from_leaf_level(level) {
                            self.resident.set_pages(entry_va, 1 << (size.shift() - 12));
                        }
                    }
                    FlatEntry {
                        raw: entry.raw(),
                        child: NO_CHILD,
                    }
                };
                // Absent entries read back as EMPTY without being stored;
                // skipping them keeps sparse nodes inline.
                if flat != FlatEntry::EMPTY {
                    self.nodes[slot as usize].set(idx, flat);
                }
            }
        }
    }

    /// Branch-light descent: the hot-path equivalent of
    /// [`PageTable::translate`]. Callers that only need "is it mapped?"
    /// should use [`FlatMirror::is_mapped`] instead — the bitmap probe is
    /// an order of magnitude cheaper than this four-node descent when the
    /// arena is cache-cold.
    // asap-lint: hot-path
    #[must_use]
    pub fn translate(&self, va: VirtAddr) -> Option<Translation> {
        if !self.mode.contains(va) {
            return None;
        }
        let mut slot = 0usize;
        for level in self.mode.levels() {
            let e = self.nodes[slot].get(level.index_of(va) as usize);
            let pte = Pte::from_raw(e.raw);
            if !pte.is_present() {
                return None;
            }
            if level == PtLevel::Pl1 || pte.is_large_leaf() {
                let size = PageSize::from_leaf_level(level)?;
                return Some(Translation {
                    frame: pte.frame(),
                    size,
                    flags: pte.flags(),
                });
            }
            assert_ne!(e.child, NO_CHILD, "flat mirror out of sync at {level}");
            slot = e.child as usize;
        }
        None
    }

    /// Whether `va` is covered by any present leaf — the per-access
    /// demand-paging residency check, served from the chunked page bitmap
    /// (one tiny-map probe + one bit test; no leaf-map or arena traffic).
    #[must_use]
    pub fn is_mapped(&self, va: VirtAddr) -> bool {
        self.resident.test(va.raw())
    }
}

impl WalkSource for FlatMirror {
    fn mode(&self) -> PagingMode {
        self.mode
    }

    fn walk_fixed(&self, va: VirtAddr) -> FixedWalk {
        let mut walk = FixedWalk::empty_fault(va, self.mode.root_level());
        if !self.mode.contains(va) {
            return walk;
        }
        let mut slot = 0usize;
        for level in self.mode.levels() {
            let node = &self.nodes[slot];
            let e = node.get(level.index_of(va) as usize);
            let entry = Pte::from_raw(e.raw);
            walk.push(WalkStep {
                level,
                entry_addr: PageTable::entry_addr(node.frame, level, va),
                entry,
            });
            if !entry.is_present() {
                walk.set_outcome(WalkOutcome::Fault { level });
                return walk;
            }
            if level == PtLevel::Pl1 || entry.is_large_leaf() {
                let outcome = match PageSize::from_leaf_level(level) {
                    Some(size) => WalkOutcome::Mapped(Translation {
                        frame: entry.frame(),
                        size,
                        flags: entry.flags(),
                    }),
                    None => WalkOutcome::Fault { level },
                };
                walk.set_outcome(outcome);
                return walk;
            }
            assert_ne!(e.child, NO_CHILD, "flat mirror out of sync at {level}");
            slot = e.child as usize;
        }
        unreachable!("walk always terminates at PL1 or a leaf");
    }

    fn translate(&self, va: VirtAddr) -> Option<Translation> {
        Self::translate(self, va)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BumpNodeAllocator, PteFlags};

    fn setup() -> (SimPhysMem, BumpNodeAllocator, PageTable, FlatMirror) {
        let mut mem = SimPhysMem::new();
        let mut alloc = BumpNodeAllocator::new(PhysFrameNum::new(0x100));
        let pt = PageTable::new(PagingMode::FourLevel, &mut mem, &mut alloc);
        let mirror = FlatMirror::new(&pt);
        (mem, alloc, pt, mirror)
    }

    fn map_synced(
        mem: &mut SimPhysMem,
        alloc: &mut BumpNodeAllocator,
        pt: &mut PageTable,
        mirror: &mut FlatMirror,
        va: VirtAddr,
        frame: PhysFrameNum,
        size: PageSize,
    ) {
        pt.map(mem, alloc, va, frame, size, PteFlags::user_data())
            .unwrap();
        mirror.sync_va(mem, pt, va);
    }

    #[test]
    fn empty_mirror_translates_nothing() {
        let (_, _, _, mirror) = setup();
        assert!(mirror.translate(VirtAddr::new(0x1000).unwrap()).is_none());
        assert_eq!(mirror.node_count(), 1); // root slot
    }

    #[test]
    fn synced_mirror_matches_radix_translate() {
        let (mut mem, mut alloc, mut pt, mut mirror) = setup();
        let va = VirtAddr::new(0x7fff_1234_5000).unwrap();
        map_synced(
            &mut mem,
            &mut alloc,
            &mut pt,
            &mut mirror,
            va,
            PhysFrameNum::new(0x42),
            PageSize::Size4K,
        );
        assert_eq!(mirror.translate(va), pt.translate(&mem, va));
        assert_eq!(mirror.node_count(), mem.table_frame_count());
    }

    #[test]
    fn walk_fixed_matches_radix_walker_trace() {
        let (mut mem, mut alloc, mut pt, mut mirror) = setup();
        let va = VirtAddr::new(0x12_3456_7000).unwrap();
        map_synced(
            &mut mem,
            &mut alloc,
            &mut pt,
            &mut mirror,
            va,
            PhysFrameNum::new(7),
            PageSize::Size4K,
        );
        let radix = Walker::walk_fixed(&mem, &pt, va);
        assert_eq!(mirror.walk_fixed(va), radix);
        // Faulting cousin: same chain, no PL1 mapping — traces match too.
        let cousin = VirtAddr::new(va.raw() ^ 0x1000).unwrap();
        assert_eq!(
            mirror.walk_fixed(cousin),
            Walker::walk_fixed(&mem, &pt, cousin)
        );
    }

    #[test]
    fn unmap_hole_visible_after_sync() {
        let (mut mem, mut alloc, mut pt, mut mirror) = setup();
        let va = VirtAddr::new(0x5000).unwrap();
        map_synced(
            &mut mem,
            &mut alloc,
            &mut pt,
            &mut mirror,
            va,
            PhysFrameNum::new(1),
            PageSize::Size4K,
        );
        pt.unmap(&mut mem, va).unwrap();
        mirror.sync_va(&mem, &pt, va);
        assert!(mirror.translate(va).is_none());
        assert_eq!(mirror.walk_fixed(va), Walker::walk_fixed(&mem, &pt, va));
    }

    #[test]
    fn rebuild_mirrors_existing_mappings() {
        let (mut mem, mut alloc, mut pt, mut mirror) = setup();
        let vas: Vec<VirtAddr> = [0x5000u64, 0x4000_0000, 0x7fff_0000_0000]
            .iter()
            .map(|&r| VirtAddr::new(r).unwrap())
            .collect();
        for (i, &va) in vas.iter().enumerate() {
            pt.map(
                &mut mem,
                &mut alloc,
                va,
                PhysFrameNum::new(0x1000 + i as u64),
                PageSize::Size4K,
                PteFlags::user_data(),
            )
            .unwrap();
        }
        mirror.rebuild(&mem, &pt);
        for &va in &vas {
            assert_eq!(mirror.translate(va), pt.translate(&mem, va));
            assert_eq!(mirror.walk_fixed(va), Walker::walk_fixed(&mem, &pt, va));
        }
        assert_eq!(mirror.node_count(), mem.table_frame_count());
    }

    #[test]
    fn large_pages_mirror_correctly() {
        let (mut mem, mut alloc, mut pt, mut mirror) = setup();
        let va2m = VirtAddr::new(0x4000_0000).unwrap();
        map_synced(
            &mut mem,
            &mut alloc,
            &mut pt,
            &mut mirror,
            va2m,
            PhysFrameNum::new(512),
            PageSize::Size2M,
        );
        let inside = va2m.checked_add(0x12_3456).unwrap();
        assert_eq!(mirror.translate(inside), pt.translate(&mem, inside));
        assert_eq!(mirror.translate(inside).unwrap().size, PageSize::Size2M);
        let va1g = VirtAddr::new(0x40_0000_0000).unwrap();
        map_synced(
            &mut mem,
            &mut alloc,
            &mut pt,
            &mut mirror,
            va1g,
            PhysFrameNum::new(512 * 512 * 3),
            PageSize::Size1G,
        );
        assert_eq!(mirror.translate(va1g).unwrap().size, PageSize::Size1G);
    }

    #[test]
    fn out_of_range_is_empty_fault() {
        let (_, _, pt, mirror) = setup();
        let far = VirtAddr::new(1 << 50).unwrap();
        assert!(mirror.translate(far).is_none());
        let walk = mirror.walk_fixed(far);
        assert!(walk.is_fault());
        assert!(walk.steps().is_empty());
        assert_eq!(
            walk.outcome(),
            WalkOutcome::Fault {
                level: pt.mode().root_level()
            }
        );
    }

    #[test]
    fn inline_node_spills_to_full_array() {
        let (mut mem, mut alloc, mut pt, mut mirror) = setup();
        // Map more than INLINE_WAYS sibling pages under one PL1 node so its
        // inline storage must spill, then verify every one still resolves.
        let base = 0x4000_0000u64;
        let count = INLINE_WAYS + 8;
        for i in 0..count {
            map_synced(
                &mut mem,
                &mut alloc,
                &mut pt,
                &mut mirror,
                VirtAddr::new(base + (i as u64) * 0x1000).unwrap(),
                PhysFrameNum::new(0x2000 + i as u64),
                PageSize::Size4K,
            );
        }
        for i in 0..count {
            let va = VirtAddr::new(base + (i as u64) * 0x1000).unwrap();
            assert_eq!(mirror.translate(va), pt.translate(&mem, va), "page {i}");
            assert_eq!(mirror.walk_fixed(va), Walker::walk_fixed(&mem, &pt, va));
        }
    }

    #[test]
    fn radix_source_matches_walker() {
        let (mut mem, mut alloc, mut pt, _) = setup();
        let va = VirtAddr::new(0x9000).unwrap();
        pt.map(
            &mut mem,
            &mut alloc,
            va,
            PhysFrameNum::new(9),
            PageSize::Size4K,
            PteFlags::user_data(),
        )
        .unwrap();
        let src = RadixSource { mem: &mem, pt: &pt };
        assert_eq!(src.walk_fixed(va), Walker::walk_fixed(&mem, &pt, va));
        assert_eq!(WalkSource::translate(&src, va), pt.translate(&mem, va));
    }
}
