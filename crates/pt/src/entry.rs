//! Page-table entries with architectural bit layout.

use asap_types::{PhysFrameNum, PAGE_SHIFT};

/// Flag bits of an x86-64 page-table entry.
///
/// The layout follows the architecture: bit 0 present, bit 1 writable,
/// bit 2 user, bit 5 accessed, bit 6 dirty, bit 7 page-size (for non-leaf
/// levels), bit 63 no-execute.
///
/// # Examples
///
/// ```
/// use asap_pt::PteFlags;
/// let f = PteFlags::user_data();
/// assert!(f.present() && f.writable() && f.user() && f.no_execute());
/// assert!(!f.page_size());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct PteFlags(u64);

impl PteFlags {
    /// Present bit (bit 0).
    pub const PRESENT: u64 = 1 << 0;
    /// Read/write bit (bit 1).
    pub const WRITABLE: u64 = 1 << 1;
    /// User/supervisor bit (bit 2).
    pub const USER: u64 = 1 << 2;
    /// Accessed bit (bit 5).
    pub const ACCESSED: u64 = 1 << 5;
    /// Dirty bit (bit 6).
    pub const DIRTY: u64 = 1 << 6;
    /// Page-size bit (bit 7): set on a PL2/PL3 entry that maps a large page.
    pub const PAGE_SIZE: u64 = 1 << 7;
    /// No-execute bit (bit 63).
    pub const NO_EXECUTE: u64 = 1 << 63;

    const ALL: u64 = Self::PRESENT
        | Self::WRITABLE
        | Self::USER
        | Self::ACCESSED
        | Self::DIRTY
        | Self::PAGE_SIZE
        | Self::NO_EXECUTE;

    /// An empty flag set (entry not present).
    #[must_use]
    pub const fn empty() -> Self {
        Self(0)
    }

    /// Flags from raw bits; non-flag bits are masked off.
    #[must_use]
    pub const fn from_bits(bits: u64) -> Self {
        Self(bits & Self::ALL)
    }

    /// Typical flags for a user data page: present, writable, user, NX.
    #[must_use]
    pub const fn user_data() -> Self {
        Self(Self::PRESENT | Self::WRITABLE | Self::USER | Self::NO_EXECUTE)
    }

    /// Typical flags for an intermediate page-table node: present, writable,
    /// user (permissions are intersected down the walk on x86).
    #[must_use]
    pub const fn intermediate() -> Self {
        Self(Self::PRESENT | Self::WRITABLE | Self::USER)
    }

    /// Raw bits.
    #[must_use]
    pub const fn bits(self) -> u64 {
        self.0
    }

    /// Returns these flags with `bit` set.
    #[must_use]
    pub const fn with(self, bit: u64) -> Self {
        Self((self.0 | bit) & Self::ALL)
    }

    /// Returns these flags with `bit` cleared.
    #[must_use]
    pub const fn without(self, bit: u64) -> Self {
        Self(self.0 & !bit)
    }

    /// Present bit value.
    #[must_use]
    pub const fn present(self) -> bool {
        self.0 & Self::PRESENT != 0
    }

    /// Writable bit value.
    #[must_use]
    pub const fn writable(self) -> bool {
        self.0 & Self::WRITABLE != 0
    }

    /// User-accessible bit value.
    #[must_use]
    pub const fn user(self) -> bool {
        self.0 & Self::USER != 0
    }

    /// Accessed bit value.
    #[must_use]
    pub const fn accessed(self) -> bool {
        self.0 & Self::ACCESSED != 0
    }

    /// Dirty bit value.
    #[must_use]
    pub const fn dirty(self) -> bool {
        self.0 & Self::DIRTY != 0
    }

    /// Page-size bit value (large-page leaf at PL2/PL3).
    #[must_use]
    pub const fn page_size(self) -> bool {
        self.0 & Self::PAGE_SIZE != 0
    }

    /// No-execute bit value.
    #[must_use]
    pub const fn no_execute(self) -> bool {
        self.0 & Self::NO_EXECUTE != 0
    }
}

impl core::fmt::Display for PteFlags {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let mut s = String::with_capacity(7);
        s.push(if self.present() { 'P' } else { '-' });
        s.push(if self.writable() { 'W' } else { '-' });
        s.push(if self.user() { 'U' } else { '-' });
        s.push(if self.accessed() { 'A' } else { '-' });
        s.push(if self.dirty() { 'D' } else { '-' });
        s.push(if self.page_size() { 'S' } else { '-' });
        s.push(if self.no_execute() { 'X' } else { '-' });
        f.write_str(&s)
    }
}

/// A 64-bit page-table entry: flags plus a 40-bit frame number in bits 12–51.
///
/// A zero raw value is a not-present entry, exactly as on hardware — this is
/// what makes lazily-populated (sparse) page-table frames behave correctly.
///
/// # Examples
///
/// ```
/// use asap_pt::{Pte, PteFlags};
/// use asap_types::PhysFrameNum;
///
/// let pte = Pte::new(PhysFrameNum::new(0x1234), PteFlags::user_data());
/// assert!(pte.is_present());
/// assert_eq!(pte.frame(), PhysFrameNum::new(0x1234));
/// assert_eq!(Pte::not_present().raw(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Pte(u64);

impl Pte {
    /// Mask of the physical-frame-number field (bits 12..52).
    pub const ADDR_MASK: u64 = 0x000f_ffff_ffff_f000;

    /// Builds an entry pointing at `frame` with `flags`.
    ///
    /// # Panics
    ///
    /// Panics if `frame` does not fit in the 40-bit PFN field.
    #[must_use]
    pub fn new(frame: PhysFrameNum, flags: PteFlags) -> Self {
        let addr = frame.raw() << PAGE_SHIFT;
        assert_eq!(addr & !Self::ADDR_MASK, 0, "frame number out of range");
        Self(addr | flags.bits())
    }

    /// The canonical not-present entry (raw zero).
    #[must_use]
    pub const fn not_present() -> Self {
        Self(0)
    }

    /// Reinterprets a raw 64-bit value as an entry.
    #[must_use]
    pub const fn from_raw(raw: u64) -> Self {
        Self(raw)
    }

    /// The raw 64-bit value.
    #[must_use]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The frame number in the address field.
    #[must_use]
    pub const fn frame(self) -> PhysFrameNum {
        PhysFrameNum::new((self.0 & Self::ADDR_MASK) >> PAGE_SHIFT)
    }

    /// The entry's flag bits.
    #[must_use]
    pub const fn flags(self) -> PteFlags {
        PteFlags::from_bits(self.0)
    }

    /// Whether the present bit is set.
    #[must_use]
    pub const fn is_present(self) -> bool {
        self.flags().present()
    }

    /// Whether this is a large-page leaf (present with the PS bit).
    #[must_use]
    pub const fn is_large_leaf(self) -> bool {
        self.is_present() && self.flags().page_size()
    }

    /// Returns the entry with the accessed bit set (walkers set A bits).
    #[must_use]
    pub const fn with_accessed(self) -> Self {
        Self(self.0 | PteFlags::ACCESSED)
    }

    /// Returns the entry with the dirty bit set.
    #[must_use]
    pub const fn with_dirty(self) -> Self {
        Self(self.0 | PteFlags::DIRTY)
    }
}

impl core::fmt::Display for Pte {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if !self.is_present() {
            return write!(f, "pte:<not-present>");
        }
        write!(f, "pte:{}@{}", self.frame(), self.flags())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_not_present() {
        assert!(!Pte::not_present().is_present());
        assert!(!Pte::from_raw(0).is_present());
    }

    #[test]
    fn frame_and_flags_roundtrip() {
        let frame = PhysFrameNum::new(0xdeadb);
        let flags = PteFlags::user_data().with(PteFlags::ACCESSED);
        let pte = Pte::new(frame, flags);
        assert_eq!(pte.frame(), frame);
        assert_eq!(pte.flags(), flags);
    }

    #[test]
    fn flag_bits_do_not_leak_into_address() {
        let pte = Pte::new(PhysFrameNum::new(1), PteFlags::from_bits(u64::MAX));
        assert_eq!(pte.frame(), PhysFrameNum::new(1));
    }

    #[test]
    fn large_leaf_detection() {
        let base = Pte::new(PhysFrameNum::new(0x200), PteFlags::intermediate());
        assert!(!base.is_large_leaf());
        let large = Pte::new(
            PhysFrameNum::new(0x200),
            PteFlags::user_data().with(PteFlags::PAGE_SIZE),
        );
        assert!(large.is_large_leaf());
        // PS bit without P bit is not a leaf.
        let stale = Pte::new(
            PhysFrameNum::new(0x200),
            PteFlags::from_bits(PteFlags::PAGE_SIZE),
        );
        assert!(!stale.is_large_leaf());
    }

    #[test]
    fn accessed_dirty_updates() {
        let pte = Pte::new(PhysFrameNum::new(3), PteFlags::user_data());
        assert!(!pte.flags().accessed());
        let pte = pte.with_accessed().with_dirty();
        assert!(pte.flags().accessed());
        assert!(pte.flags().dirty());
        assert_eq!(pte.frame(), PhysFrameNum::new(3), "address untouched");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_frame_rejected() {
        let _ = Pte::new(PhysFrameNum::new(1 << 40), PteFlags::user_data());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Pte::not_present().to_string(), "pte:<not-present>");
        let pte = Pte::new(PhysFrameNum::new(0x42), PteFlags::user_data());
        assert_eq!(pte.to_string(), "pte:pfn:0x42@PWU---X");
    }

    #[test]
    fn flags_display() {
        assert_eq!(PteFlags::empty().to_string(), "-------");
        assert_eq!(PteFlags::user_data().to_string(), "PWU---X");
        assert_eq!(
            PteFlags::intermediate()
                .with(PteFlags::ACCESSED)
                .to_string(),
            "PWUA---"
        );
    }
}
