//! A software model of the hardware page-walker state machine.
//!
//! Unlike [`crate::PageTable::translate`], the walker records the physical
//! address of **every node it touches**, leaf-ward from the root. That trace
//! is the input to the walk-timing model in `asap-core`: each step becomes a
//! (possibly PWC-elided, possibly prefetch-overlapped) memory-hierarchy
//! access, exactly as in the paper's Fig. 4.

use crate::{PageTable, Pte, SimPhysMem, Translation};
use asap_types::{PageSize, PhysAddr, PtLevel, VirtAddr};

/// The deepest walk any paging mode performs (5-level paging).
pub const MAX_WALK_DEPTH: usize = 5;

/// One node access performed by the walker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalkStep {
    /// The page-table level of the node read.
    pub level: PtLevel,
    /// Physical address of the 8-byte entry that was read.
    pub entry_addr: PhysAddr,
    /// The entry value observed.
    pub entry: Pte,
}

/// Terminal state of a walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalkOutcome {
    /// The walk found a present leaf.
    Mapped(Translation),
    /// The walk hit a not-present entry at the given level (page fault).
    Fault {
        /// Level at which the not-present entry was found.
        level: PtLevel,
    },
}

/// The full record of one page walk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalkTrace {
    /// The virtual address that triggered the walk.
    pub va: VirtAddr,
    /// Node accesses in walk order (root first). A faulting walk still
    /// contains the step that read the not-present entry — the hardware
    /// performs that read before raising the fault, and ASAP accelerates
    /// fault detection the same way it accelerates successful walks
    /// (paper §3.7.1).
    pub steps: Vec<WalkStep>,
    /// How the walk ended.
    pub outcome: WalkOutcome,
}

impl WalkTrace {
    /// The translation if the walk succeeded.
    #[must_use]
    pub fn translation(&self) -> Option<Translation> {
        match self.outcome {
            WalkOutcome::Mapped(t) => Some(t),
            WalkOutcome::Fault { .. } => None,
        }
    }

    /// The step that accessed `level`, if the walk got that far.
    #[must_use]
    pub fn step_at(&self, level: PtLevel) -> Option<&WalkStep> {
        self.steps.iter().find(|s| s.level == level)
    }

    /// Whether the walk faulted.
    #[must_use]
    pub fn is_fault(&self) -> bool {
        matches!(self.outcome, WalkOutcome::Fault { .. })
    }
}

/// A walk record with inline step storage: the allocation-free twin of
/// [`WalkTrace`], used on the simulator hot path where a per-walk `Vec`
/// would dominate the cost of the walk itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FixedWalk {
    va: VirtAddr,
    steps: [WalkStep; MAX_WALK_DEPTH],
    len: u8,
    outcome: WalkOutcome,
}

impl FixedWalk {
    const FILLER: WalkStep = WalkStep {
        level: PtLevel::Pl1,
        entry_addr: PhysAddr::new(0),
        entry: Pte::not_present(),
    };

    /// An empty walk that faulted before touching any node (VA outside the
    /// paging mode's range).
    #[must_use]
    pub(crate) fn empty_fault(va: VirtAddr, level: PtLevel) -> Self {
        Self {
            va,
            steps: [Self::FILLER; MAX_WALK_DEPTH],
            len: 0,
            outcome: WalkOutcome::Fault { level },
        }
    }

    pub(crate) fn push(&mut self, step: WalkStep) {
        self.steps[self.len as usize] = step;
        self.len += 1;
    }

    pub(crate) fn set_outcome(&mut self, outcome: WalkOutcome) {
        self.outcome = outcome;
    }

    /// The virtual address that triggered the walk.
    #[must_use]
    pub fn va(&self) -> VirtAddr {
        self.va
    }

    /// Node accesses in walk order (root first), as in [`WalkTrace::steps`].
    #[must_use]
    pub fn steps(&self) -> &[WalkStep] {
        &self.steps[..self.len as usize]
    }

    /// How the walk ended.
    #[must_use]
    pub fn outcome(&self) -> WalkOutcome {
        self.outcome
    }

    /// The translation if the walk succeeded.
    #[must_use]
    pub fn translation(&self) -> Option<Translation> {
        match self.outcome {
            WalkOutcome::Mapped(t) => Some(t),
            WalkOutcome::Fault { .. } => None,
        }
    }

    /// The step that accessed `level`, if the walk got that far.
    #[must_use]
    pub fn step_at(&self, level: PtLevel) -> Option<&WalkStep> {
        self.steps().iter().find(|s| s.level == level)
    }

    /// Whether the walk faulted.
    #[must_use]
    pub fn is_fault(&self) -> bool {
        matches!(self.outcome, WalkOutcome::Fault { .. })
    }

    /// The heap-allocated [`WalkTrace`] equivalent, for cold paths that
    /// store or transform traces.
    #[must_use]
    pub fn to_trace(&self) -> WalkTrace {
        WalkTrace {
            va: self.va,
            steps: self.steps().to_vec(),
            outcome: self.outcome,
        }
    }
}

/// The page-walker state machine.
///
/// Stateless: hardware walkers keep their state in flight, and every walk
/// here is fully described by its [`WalkTrace`].
///
/// # Examples
///
/// ```
/// use asap_pt::{BumpNodeAllocator, PageTable, PteFlags, SimPhysMem, Walker};
/// use asap_types::{PageSize, PagingMode, PhysFrameNum, PtLevel, VirtAddr};
///
/// let mut mem = SimPhysMem::new();
/// let mut alloc = BumpNodeAllocator::new(PhysFrameNum::new(0x100));
/// let mut pt = PageTable::new(PagingMode::FourLevel, &mut mem, &mut alloc);
/// let va = VirtAddr::new(0x12_3456_7000).unwrap();
/// pt.map(&mut mem, &mut alloc, va, PhysFrameNum::new(5), PageSize::Size4K,
///        PteFlags::user_data()).unwrap();
///
/// let trace = Walker::walk(&mem, &pt, va);
/// assert_eq!(trace.steps.len(), 4); // PL4, PL3, PL2, PL1
/// assert_eq!(trace.steps[0].level, PtLevel::Pl4);
/// assert!(trace.translation().is_some());
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Walker;

impl Walker {
    /// Walks the page table for `va`, recording every node access.
    #[must_use]
    pub fn walk(mem: &SimPhysMem, pt: &PageTable, va: VirtAddr) -> WalkTrace {
        Self::walk_fixed(mem, pt, va).to_trace()
    }

    /// [`Walker::walk`] without the heap allocation: the hot-path form.
    #[must_use]
    pub fn walk_fixed(mem: &SimPhysMem, pt: &PageTable, va: VirtAddr) -> FixedWalk {
        let mut walk = FixedWalk::empty_fault(va, pt.mode().root_level());
        if !pt.mode().contains(va) {
            return walk;
        }
        let mut node = pt.root();
        for level in pt.mode().levels() {
            let entry_addr = PageTable::entry_addr(node, level, va);
            let entry = mem.read_entry(entry_addr);
            walk.push(WalkStep {
                level,
                entry_addr,
                entry,
            });
            if !entry.is_present() {
                walk.set_outcome(WalkOutcome::Fault { level });
                return walk;
            }
            if level == PtLevel::Pl1 || entry.is_large_leaf() {
                // A PS bit at PL4/PL5 is architecturally reserved;
                // from_leaf_level is None there and the walk faults.
                let outcome = match PageSize::from_leaf_level(level) {
                    Some(size) => WalkOutcome::Mapped(Translation {
                        frame: entry.frame(),
                        size,
                        flags: entry.flags(),
                    }),
                    None => WalkOutcome::Fault { level },
                };
                walk.set_outcome(outcome);
                return walk;
            }
            node = entry.frame();
        }
        unreachable!("walk always terminates at PL1 or a leaf");
    }

    /// Walks starting from a mid-tree node, as a hardware walker does after
    /// a page-walk-cache hit: `start_level` is the level of the entry that
    /// `node` holds (e.g. a PWC hit on the PL2 *entry* yields the PL1 table
    /// frame, so the resumed walk starts at PL1 with that frame).
    #[must_use]
    pub fn walk_from(
        mem: &SimPhysMem,
        va: VirtAddr,
        node: asap_types::PhysFrameNum,
        start_level: PtLevel,
    ) -> WalkTrace {
        let mut steps = Vec::with_capacity(start_level.depth() as usize);
        let mut node = node;
        let mut level = start_level;
        loop {
            let entry_addr = PageTable::entry_addr(node, level, va);
            let entry = mem.read_entry(entry_addr);
            steps.push(WalkStep {
                level,
                entry_addr,
                entry,
            });
            if !entry.is_present() {
                return WalkTrace {
                    va,
                    steps,
                    outcome: WalkOutcome::Fault { level },
                };
            }
            if level == PtLevel::Pl1 || entry.is_large_leaf() {
                let size = PageSize::from_leaf_level(level);
                let outcome = match size {
                    Some(s) => WalkOutcome::Mapped(Translation {
                        frame: entry.frame(),
                        size: s,
                        flags: entry.flags(),
                    }),
                    None => WalkOutcome::Fault { level },
                };
                return WalkTrace { va, steps, outcome };
            }
            node = entry.frame();
            level = level.child().expect("descending from non-leaf");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BumpNodeAllocator, PteFlags};
    use asap_types::{PagingMode, PhysFrameNum};

    fn setup_mapped() -> (SimPhysMem, PageTable, VirtAddr) {
        let mut mem = SimPhysMem::new();
        let mut alloc = BumpNodeAllocator::new(PhysFrameNum::new(0x100));
        let mut pt = PageTable::new(PagingMode::FourLevel, &mut mem, &mut alloc);
        let va = VirtAddr::new(0x7fff_1234_5000).unwrap();
        pt.map(
            &mut mem,
            &mut alloc,
            va,
            PhysFrameNum::new(0x9999),
            PageSize::Size4K,
            PteFlags::user_data(),
        )
        .unwrap();
        (mem, pt, va)
    }

    #[test]
    fn full_walk_visits_all_levels_in_order() {
        let (mem, pt, va) = setup_mapped();
        let trace = Walker::walk(&mem, &pt, va);
        let levels: Vec<_> = trace.steps.iter().map(|s| s.level).collect();
        assert_eq!(
            levels,
            [PtLevel::Pl4, PtLevel::Pl3, PtLevel::Pl2, PtLevel::Pl1]
        );
        assert_eq!(
            trace.translation().unwrap().frame,
            PhysFrameNum::new(0x9999)
        );
    }

    #[test]
    fn walk_matches_translate() {
        let (mem, pt, va) = setup_mapped();
        assert_eq!(
            Walker::walk(&mem, &pt, va).translation(),
            pt.translate(&mem, va)
        );
    }

    #[test]
    fn fault_records_partial_trace() {
        let (mem, pt, va) = setup_mapped();
        // Same PL4/PL3/PL2 chain, different PL1 slot that was never mapped.
        let cousin = VirtAddr::new(va.raw() ^ 0x1000).unwrap();
        let trace = Walker::walk(&mem, &pt, cousin);
        assert!(trace.is_fault());
        assert_eq!(
            trace.outcome,
            WalkOutcome::Fault {
                level: PtLevel::Pl1
            }
        );
        // The faulting read itself is part of the trace (§3.7.1).
        assert_eq!(trace.steps.len(), 4);
        assert!(!trace.steps.last().unwrap().entry.is_present());
    }

    #[test]
    fn fault_at_root_for_distant_address() {
        let (mem, pt, _) = setup_mapped();
        let far = VirtAddr::new(0x0000_0abc_0000_0000).unwrap();
        let trace = Walker::walk(&mem, &pt, far);
        assert!(trace.is_fault());
        assert_eq!(trace.steps.len(), 1);
        assert_eq!(trace.steps[0].level, PtLevel::Pl4);
    }

    #[test]
    fn large_page_walk_is_shorter() {
        let mut mem = SimPhysMem::new();
        let mut alloc = BumpNodeAllocator::new(PhysFrameNum::new(0x100));
        let mut pt = PageTable::new(PagingMode::FourLevel, &mut mem, &mut alloc);
        let va = VirtAddr::new(0x4000_0000).unwrap();
        pt.map(
            &mut mem,
            &mut alloc,
            va,
            PhysFrameNum::new(512),
            PageSize::Size2M,
            PteFlags::user_data(),
        )
        .unwrap();
        let trace = Walker::walk(&mem, &pt, va.checked_add(0x1234).unwrap());
        assert_eq!(trace.steps.len(), 3); // PL4, PL3, PL2 leaf
        let t = trace.translation().unwrap();
        assert_eq!(t.size, PageSize::Size2M);
    }

    #[test]
    fn entry_addresses_are_within_their_nodes() {
        let (mem, pt, va) = setup_mapped();
        let trace = Walker::walk(&mem, &pt, va);
        for step in &trace.steps {
            assert!(
                mem.is_table_frame(step.entry_addr.frame_number()),
                "step at {} reads inside a table frame",
                step.level
            );
            assert_eq!(step.entry_addr.frame_offset() % 8, 0);
        }
    }

    #[test]
    fn walk_from_resumes_mid_tree() {
        let (mem, pt, va) = setup_mapped();
        let full = Walker::walk(&mem, &pt, va);
        // Resume from the PL1 table frame, as after a PL2-entry PWC hit.
        let pl2_step = full.step_at(PtLevel::Pl2).unwrap();
        let resumed = Walker::walk_from(&mem, va, pl2_step.entry.frame(), PtLevel::Pl1);
        assert_eq!(resumed.steps.len(), 1);
        assert_eq!(resumed.steps[0], *full.step_at(PtLevel::Pl1).unwrap());
        assert_eq!(resumed.translation(), full.translation());
    }

    #[test]
    fn five_level_walk_has_five_steps() {
        let mut mem = SimPhysMem::new();
        let mut alloc = BumpNodeAllocator::new(PhysFrameNum::new(0x100));
        let mut pt = PageTable::new(PagingMode::FiveLevel, &mut mem, &mut alloc);
        let va = VirtAddr::new(1 << 52).unwrap();
        pt.map(
            &mut mem,
            &mut alloc,
            va,
            PhysFrameNum::new(3),
            PageSize::Size4K,
            PteFlags::user_data(),
        )
        .unwrap();
        let trace = Walker::walk(&mem, &pt, va);
        assert_eq!(trace.steps.len(), 5);
        assert_eq!(trace.steps[0].level, PtLevel::Pl5);
    }
}
