//! The radix-tree page table: map, unmap, translate.

use crate::{PtError, Pte, PteFlags, SimPhysMem};
use asap_types::{PageSize, PagingMode, PhysAddr, PhysFrameNum, PtLevel, VirtAddr, PTE_SIZE};

/// Chooses physical frames for new page-table nodes.
///
/// This is the policy hook at the heart of the reproduction: the paper's OS
/// extension (§3.3) is *exactly* a page-table node placement policy. The
/// baseline implementation scatters nodes like the Linux buddy allocator;
/// the ASAP implementation places PL1/PL2 nodes in reserved, contiguous,
/// virtually-sorted regions. Both live in `asap-os`; this crate only defines
/// the interface plus a trivial bump allocator for tests and examples.
pub trait PtNodeAllocator {
    /// Returns a fresh, zeroed frame for a node at `level` that will map the
    /// virtual region containing `va`.
    fn alloc_node(&mut self, level: PtLevel, va: VirtAddr) -> PhysFrameNum;

    /// Returns a frame no longer needed by the page table.
    ///
    /// The default implementation leaks the frame, which is acceptable for
    /// short-lived simulations.
    fn free_node(&mut self, level: PtLevel, frame: PhysFrameNum) {
        let _ = (level, frame);
    }
}

/// A sequential node allocator for tests, examples and micro-benchmarks.
#[derive(Debug, Clone)]
pub struct BumpNodeAllocator {
    next: u64,
}

impl BumpNodeAllocator {
    /// Creates an allocator handing out frames from `start` upward.
    #[must_use]
    pub fn new(start: PhysFrameNum) -> Self {
        Self { next: start.raw() }
    }

    /// The next frame that would be returned.
    #[must_use]
    pub fn peek(&self) -> PhysFrameNum {
        PhysFrameNum::new(self.next)
    }
}

impl PtNodeAllocator for BumpNodeAllocator {
    fn alloc_node(&mut self, _level: PtLevel, _va: VirtAddr) -> PhysFrameNum {
        let f = PhysFrameNum::new(self.next);
        self.next += 1;
        f
    }
}

/// The result of a successful translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Translation {
    /// Base frame of the mapped page (aligned to `size`).
    pub frame: PhysFrameNum,
    /// The mapping's page size.
    pub size: PageSize,
    /// Flags of the leaf entry.
    pub flags: PteFlags,
}

impl Translation {
    /// The full physical address for `va` under this translation.
    #[must_use]
    pub fn phys_addr(&self, va: VirtAddr) -> PhysAddr {
        let page_mask = self.size.bytes() - 1;
        PhysAddr::new(self.frame.base_addr().raw() | (va.raw() & page_mask))
    }
}

/// An x86-64 radix-tree page table (4- or 5-level).
///
/// All operations take the backing [`SimPhysMem`] explicitly: the page table
/// is *data in simulated memory*, just like on hardware, which is what lets
/// the walker, the caches, and ASAP prefetches all see the same bytes.
#[derive(Debug, Clone, Copy)]
pub struct PageTable {
    mode: PagingMode,
    root: PhysFrameNum,
}

impl PageTable {
    /// Entries per page-table node (512 on x86-64: 4 KiB / 8-byte PTEs).
    pub const ENTRIES_PER_NODE: usize = 512;

    /// Allocates a root node and returns an empty page table.
    pub fn new(mode: PagingMode, mem: &mut SimPhysMem, alloc: &mut dyn PtNodeAllocator) -> Self {
        let root = alloc.alloc_node(mode.root_level(), VirtAddr::new_unchecked(0));
        mem.install_table_frame(root);
        Self { mode, root }
    }

    /// Reconstructs a handle from an existing root (e.g. guest CR3).
    #[must_use]
    pub fn from_root(mode: PagingMode, root: PhysFrameNum) -> Self {
        Self { mode, root }
    }

    /// The root node's frame (CR3 analogue).
    #[must_use]
    pub fn root(&self) -> PhysFrameNum {
        self.root
    }

    /// The paging mode.
    #[must_use]
    pub fn mode(&self) -> PagingMode {
        self.mode
    }

    /// Physical address of the entry at `level` selected by `va`, given that
    /// the node holding it lives in `node`.
    #[must_use]
    pub fn entry_addr(node: PhysFrameNum, level: PtLevel, va: VirtAddr) -> PhysAddr {
        node.base_addr().add(level.index_of(va) * PTE_SIZE)
    }

    fn check_va(&self, va: VirtAddr) -> Result<(), PtError> {
        if self.mode.contains(va) {
            Ok(())
        } else {
            Err(PtError::OutOfRange(va))
        }
    }

    /// Maps the page of `size` containing `va` to `frame`.
    ///
    /// Intermediate nodes are created on demand through `alloc`. For large
    /// pages the leaf entry is written at PL2 (2 MiB) or PL3 (1 GiB) with
    /// the page-size bit set.
    ///
    /// # Errors
    ///
    /// * [`PtError::OutOfRange`] — `va` exceeds the paging mode width;
    /// * [`PtError::Misaligned`] — `va` or `frame` not aligned to `size`;
    /// * [`PtError::AlreadyMapped`] — a present leaf already covers `va`;
    /// * [`PtError::LargePageConflict`] — an existing large-page leaf blocks
    ///   the descent.
    pub fn map(
        &mut self,
        mem: &mut SimPhysMem,
        alloc: &mut dyn PtNodeAllocator,
        va: VirtAddr,
        frame: PhysFrameNum,
        size: PageSize,
        flags: PteFlags,
    ) -> Result<(), PtError> {
        self.check_va(va)?;
        if !va.is_aligned(size.bytes()) || frame.raw() % size.base_pages() != 0 {
            return Err(PtError::Misaligned(va));
        }
        let leaf_level = size.leaf_level();
        let mut node = self.root;
        let mut level = self.mode.root_level();
        // Descend, creating intermediate nodes, until the leaf level.
        while level != leaf_level {
            let entry_addr = Self::entry_addr(node, level, va);
            let entry = mem.read_entry(entry_addr);
            if entry.is_large_leaf() {
                return Err(PtError::LargePageConflict { va, level });
            }
            node = if entry.is_present() {
                entry.frame()
            } else {
                let child =
                    alloc.alloc_node(level.child().expect("non-leaf level has a child"), va);
                mem.install_table_frame(child);
                mem.write_entry(entry_addr, Pte::new(child, PteFlags::intermediate()));
                child
            };
            level = level.child().expect("loop stops at leaf level");
        }
        let leaf_addr = Self::entry_addr(node, leaf_level, va);
        if mem.read_entry(leaf_addr).is_present() {
            return Err(PtError::AlreadyMapped(va));
        }
        let leaf_flags = if size == PageSize::Size4K {
            flags
        } else {
            flags.with(PteFlags::PAGE_SIZE)
        };
        mem.write_entry(leaf_addr, Pte::new(frame, leaf_flags));
        Ok(())
    }

    /// Removes the mapping covering `va`, returning its page size.
    ///
    /// Intermediate nodes are left in place (as Linux does on `munmap`;
    /// table pages are reclaimed only when the whole region is torn down).
    ///
    /// # Errors
    ///
    /// [`PtError::NotMapped`] if no present leaf covers `va`.
    pub fn unmap(&mut self, mem: &mut SimPhysMem, va: VirtAddr) -> Result<PageSize, PtError> {
        self.check_va(va)?;
        let mut node = self.root;
        for level in self.mode.levels() {
            let entry_addr = Self::entry_addr(node, level, va);
            let entry = mem.read_entry(entry_addr);
            if !entry.is_present() {
                return Err(PtError::NotMapped(va));
            }
            let is_leaf = level == PtLevel::Pl1 || entry.is_large_leaf();
            if is_leaf {
                let size = PageSize::from_leaf_level(level).ok_or(PtError::NotMapped(va))?;
                mem.write_entry(entry_addr, Pte::not_present());
                return Ok(size);
            }
            node = entry.frame();
        }
        Err(PtError::NotMapped(va))
    }

    /// Resolves `va` without side effects.
    ///
    /// Returns `None` on any not-present entry (page fault). Use
    /// [`crate::Walker`] when the per-level node trace is needed.
    #[must_use]
    pub fn translate(&self, mem: &SimPhysMem, va: VirtAddr) -> Option<Translation> {
        if !self.mode.contains(va) {
            return None;
        }
        let mut node = self.root;
        for level in self.mode.levels() {
            let entry = mem.read_entry(Self::entry_addr(node, level, va));
            if !entry.is_present() {
                return None;
            }
            if level == PtLevel::Pl1 || entry.is_large_leaf() {
                let size = PageSize::from_leaf_level(level)?;
                return Some(Translation {
                    frame: entry.frame(),
                    size,
                    flags: entry.flags(),
                });
            }
            node = entry.frame();
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (SimPhysMem, BumpNodeAllocator, PageTable) {
        let mut mem = SimPhysMem::new();
        let mut alloc = BumpNodeAllocator::new(PhysFrameNum::new(0x1000));
        let pt = PageTable::new(PagingMode::FourLevel, &mut mem, &mut alloc);
        (mem, alloc, pt)
    }

    #[test]
    fn map_translate_4k() {
        let (mut mem, mut alloc, mut pt) = setup();
        let va = VirtAddr::new(0x1234_5678_9000).unwrap();
        let frame = PhysFrameNum::new(0xabc);
        pt.map(
            &mut mem,
            &mut alloc,
            va,
            frame,
            PageSize::Size4K,
            PteFlags::user_data(),
        )
        .unwrap();
        let t = pt.translate(&mem, va).unwrap();
        assert_eq!(t.frame, frame);
        assert_eq!(t.size, PageSize::Size4K);
        // Offset within the page carries through.
        let off = VirtAddr::new(0x1234_5678_9123).unwrap();
        assert_eq!(
            pt.translate(&mem, off).unwrap().phys_addr(off),
            PhysAddr::new(frame.base_addr().raw() + 0x123)
        );
    }

    #[test]
    fn unmapped_is_none() {
        let (mem, _, pt) = setup();
        assert!(pt.translate(&mem, VirtAddr::new(0x1000).unwrap()).is_none());
    }

    #[test]
    fn map_creates_exactly_needed_nodes() {
        let (mut mem, mut alloc, mut pt) = setup();
        assert_eq!(mem.table_frame_count(), 1); // root only
        let va = VirtAddr::new(0x7000_0000_0000).unwrap();
        pt.map(
            &mut mem,
            &mut alloc,
            va,
            PhysFrameNum::new(1),
            PageSize::Size4K,
            PteFlags::user_data(),
        )
        .unwrap();
        // Root + PL3 + PL2 + PL1 nodes.
        assert_eq!(mem.table_frame_count(), 4);
        // A second page in the same 2 MiB region reuses all nodes.
        let va2 = va.checked_add(0x1000).unwrap();
        pt.map(
            &mut mem,
            &mut alloc,
            va2,
            PhysFrameNum::new(2),
            PageSize::Size4K,
            PteFlags::user_data(),
        )
        .unwrap();
        assert_eq!(mem.table_frame_count(), 4);
        // A page in a different 512 GiB region allocates a fresh chain.
        let far = VirtAddr::new(0x0000_8000_0000_0000 - 0x1000).unwrap();
        pt.map(
            &mut mem,
            &mut alloc,
            far,
            PhysFrameNum::new(3),
            PageSize::Size4K,
            PteFlags::user_data(),
        )
        .unwrap();
        assert_eq!(mem.table_frame_count(), 7);
    }

    #[test]
    fn double_map_rejected() {
        let (mut mem, mut alloc, mut pt) = setup();
        let va = VirtAddr::new(0x4000).unwrap();
        pt.map(
            &mut mem,
            &mut alloc,
            va,
            PhysFrameNum::new(1),
            PageSize::Size4K,
            PteFlags::user_data(),
        )
        .unwrap();
        let again = pt.map(
            &mut mem,
            &mut alloc,
            va,
            PhysFrameNum::new(2),
            PageSize::Size4K,
            PteFlags::user_data(),
        );
        assert_eq!(again, Err(PtError::AlreadyMapped(va)));
    }

    #[test]
    fn map_2m_large_page() {
        let (mut mem, mut alloc, mut pt) = setup();
        let va = VirtAddr::new(0x4000_0000).unwrap(); // 2MiB-aligned
        let frame = PhysFrameNum::new(512 * 7); // 2MiB-aligned frame
        pt.map(
            &mut mem,
            &mut alloc,
            va,
            frame,
            PageSize::Size2M,
            PteFlags::user_data(),
        )
        .unwrap();
        // Any address inside the 2 MiB page translates.
        let inside = va.checked_add(0x12_3456).unwrap();
        let t = pt.translate(&mem, inside).unwrap();
        assert_eq!(t.size, PageSize::Size2M);
        assert!(t.flags.page_size());
        assert_eq!(
            t.phys_addr(inside).raw(),
            frame.base_addr().raw() + 0x12_3456
        );
        // Only root + PL3 + PL2 nodes exist; no PL1 was created.
        assert_eq!(mem.table_frame_count(), 3);
    }

    #[test]
    fn map_1g_large_page() {
        let (mut mem, mut alloc, mut pt) = setup();
        let va = VirtAddr::new(0x40_0000_0000).unwrap(); // 1GiB-aligned
        let frame = PhysFrameNum::new(512 * 512 * 3);
        pt.map(
            &mut mem,
            &mut alloc,
            va,
            frame,
            PageSize::Size1G,
            PteFlags::user_data(),
        )
        .unwrap();
        let t = pt
            .translate(&mem, va.checked_add(0x3fff_ffff).unwrap())
            .unwrap();
        assert_eq!(t.size, PageSize::Size1G);
        assert_eq!(mem.table_frame_count(), 2); // root + PL3
    }

    #[test]
    fn misaligned_large_page_rejected() {
        let (mut mem, mut alloc, mut pt) = setup();
        let va = VirtAddr::new(0x4000_1000).unwrap(); // not 2MiB-aligned
        let err = pt.map(
            &mut mem,
            &mut alloc,
            va,
            PhysFrameNum::new(512),
            PageSize::Size2M,
            PteFlags::user_data(),
        );
        assert_eq!(err, Err(PtError::Misaligned(va)));
        // Misaligned *frame* also rejected.
        let va = VirtAddr::new(0x4000_0000).unwrap();
        let err = pt.map(
            &mut mem,
            &mut alloc,
            va,
            PhysFrameNum::new(511),
            PageSize::Size2M,
            PteFlags::user_data(),
        );
        assert_eq!(err, Err(PtError::Misaligned(va)));
    }

    #[test]
    fn small_map_under_large_leaf_conflicts() {
        let (mut mem, mut alloc, mut pt) = setup();
        let va = VirtAddr::new(0x4000_0000).unwrap();
        pt.map(
            &mut mem,
            &mut alloc,
            va,
            PhysFrameNum::new(512),
            PageSize::Size2M,
            PteFlags::user_data(),
        )
        .unwrap();
        let inner = va.checked_add(0x1000).unwrap();
        let err = pt.map(
            &mut mem,
            &mut alloc,
            inner,
            PhysFrameNum::new(1),
            PageSize::Size4K,
            PteFlags::user_data(),
        );
        assert_eq!(
            err,
            Err(PtError::LargePageConflict {
                va: inner,
                level: PtLevel::Pl2
            })
        );
    }

    #[test]
    fn unmap_4k_and_2m() {
        let (mut mem, mut alloc, mut pt) = setup();
        let small = VirtAddr::new(0x5000).unwrap();
        let large = VirtAddr::new(0x4000_0000).unwrap();
        pt.map(
            &mut mem,
            &mut alloc,
            small,
            PhysFrameNum::new(1),
            PageSize::Size4K,
            PteFlags::user_data(),
        )
        .unwrap();
        pt.map(
            &mut mem,
            &mut alloc,
            large,
            PhysFrameNum::new(512),
            PageSize::Size2M,
            PteFlags::user_data(),
        )
        .unwrap();
        assert_eq!(pt.unmap(&mut mem, small), Ok(PageSize::Size4K));
        assert_eq!(pt.unmap(&mut mem, large), Ok(PageSize::Size2M));
        assert!(pt.translate(&mem, small).is_none());
        assert!(pt.translate(&mem, large).is_none());
        assert_eq!(pt.unmap(&mut mem, small), Err(PtError::NotMapped(small)));
    }

    #[test]
    fn five_level_mode_maps_wide_addresses() {
        let mut mem = SimPhysMem::new();
        let mut alloc = BumpNodeAllocator::new(PhysFrameNum::new(0x1000));
        let mut pt = PageTable::new(PagingMode::FiveLevel, &mut mem, &mut alloc);
        // An address above the 48-bit boundary.
        let va = VirtAddr::new(1 << 50).unwrap();
        pt.map(
            &mut mem,
            &mut alloc,
            va,
            PhysFrameNum::new(77),
            PageSize::Size4K,
            PteFlags::user_data(),
        )
        .unwrap();
        assert_eq!(pt.translate(&mem, va).unwrap().frame, PhysFrameNum::new(77));
        // Five nodes: PL5 root + PL4 + PL3 + PL2 + PL1.
        assert_eq!(mem.table_frame_count(), 5);
        // The same address is out of range for a 4-level table.
        let (mut mem4, mut alloc4, mut pt4) = setup();
        let err = pt4.map(
            &mut mem4,
            &mut alloc4,
            va,
            PhysFrameNum::new(1),
            PageSize::Size4K,
            PteFlags::user_data(),
        );
        assert_eq!(err, Err(PtError::OutOfRange(va)));
    }

    #[test]
    fn out_of_range_translate_is_none() {
        let (mem, _, pt) = setup();
        assert!(pt
            .translate(&mem, VirtAddr::new(1 << 50).unwrap())
            .is_none());
    }
}
