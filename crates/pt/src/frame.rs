//! Sparse storage for one page-table page (512 entries).

use crate::Pte;
use asap_types::ENTRIES_PER_TABLE;

/// Threshold (in populated entries) at which a frame's representation is
/// promoted from a sorted vector to a dense 512-entry array.
const DENSE_THRESHOLD: usize = 64;

#[derive(Debug, Clone)]
enum Repr {
    /// Few populated entries: `(index, raw)` pairs sorted by index. Binary
    /// search over one or two contiguous cache lines beats a pointer-chasing
    /// tree at these sizes, and the demand-fault path reads/writes entries
    /// constantly while datasets page in.
    Sparse(Vec<(u16, u64)>),
    /// Densely populated: full array (absent entries are raw zero, i.e.
    /// not-present, exactly as on hardware).
    Dense(Box<[u64; 512]>),
}

/// One 4 KiB page of page-table entries.
///
/// Real page tables are mostly sparse — a PL1 page whose 2 MiB of virtual
/// coverage has only a handful of faulted-in pages holds mostly zero
/// entries. `PtFrame` stores such pages as maps and transparently promotes
/// to a dense array when they fill up, so a simulated 400 GB memcached page
/// table fits comfortably in host memory.
///
/// # Examples
///
/// ```
/// use asap_pt::{PtFrame, Pte, PteFlags};
/// use asap_types::PhysFrameNum;
///
/// let mut frame = PtFrame::new();
/// assert!(!frame.read(7).is_present());
/// frame.write(7, Pte::new(PhysFrameNum::new(1), PteFlags::user_data()));
/// assert!(frame.read(7).is_present());
/// assert_eq!(frame.populated(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct PtFrame {
    repr: Repr,
}

impl PtFrame {
    /// Creates a frame of all-zero (not-present) entries.
    #[must_use]
    pub fn new() -> Self {
        Self {
            repr: Repr::Sparse(Vec::new()),
        }
    }

    /// Reads the entry at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 512`.
    #[must_use]
    pub fn read(&self, index: u64) -> Pte {
        assert!(index < ENTRIES_PER_TABLE, "table index out of range");
        let raw = match &self.repr {
            Repr::Sparse(pairs) => pairs
                .binary_search_by_key(&(index as u16), |&(i, _)| i)
                .map_or(0, |pos| pairs[pos].1),
            Repr::Dense(arr) => arr[index as usize],
        };
        Pte::from_raw(raw)
    }

    /// Writes the entry at `index`.
    ///
    /// Writing a not-present (zero) entry removes the slot from the sparse
    /// representation.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 512`.
    pub fn write(&mut self, index: u64, pte: Pte) {
        assert!(index < ENTRIES_PER_TABLE, "table index out of range");
        match &mut self.repr {
            Repr::Sparse(pairs) => {
                let key = index as u16;
                match pairs.binary_search_by_key(&key, |&(i, _)| i) {
                    Ok(pos) => {
                        if pte.raw() == 0 {
                            pairs.remove(pos);
                        } else {
                            pairs[pos].1 = pte.raw();
                        }
                    }
                    Err(pos) => {
                        if pte.raw() != 0 {
                            pairs.insert(pos, (key, pte.raw()));
                            if pairs.len() > DENSE_THRESHOLD {
                                self.promote();
                            }
                        }
                    }
                }
            }
            Repr::Dense(arr) => arr[index as usize] = pte.raw(),
        }
    }

    fn promote(&mut self) {
        if let Repr::Sparse(pairs) = &self.repr {
            let mut arr = Box::new([0u64; 512]);
            for &(i, raw) in pairs {
                arr[i as usize] = raw;
            }
            self.repr = Repr::Dense(arr);
        }
    }

    /// Number of present (non-zero) entries.
    #[must_use]
    pub fn populated(&self) -> usize {
        match &self.repr {
            Repr::Sparse(pairs) => pairs.len(),
            Repr::Dense(arr) => arr.iter().filter(|raw| **raw != 0).count(),
        }
    }

    /// Whether every entry is not-present.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.populated() == 0
    }

    /// Iterates `(index, pte)` over present entries in index order.
    pub fn iter_present(&self) -> Box<dyn Iterator<Item = (u64, Pte)> + '_> {
        match &self.repr {
            Repr::Sparse(pairs) => Box::new(
                pairs
                    .iter()
                    .map(|&(i, raw)| (u64::from(i), Pte::from_raw(raw))),
            ),
            Repr::Dense(arr) => Box::new(
                arr.iter()
                    .enumerate()
                    .filter(|(_, raw)| **raw != 0)
                    .map(|(i, &raw)| (i as u64, Pte::from_raw(raw))),
            ),
        }
    }
}

impl Default for PtFrame {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PteFlags;
    use asap_types::PhysFrameNum;

    fn pte(n: u64) -> Pte {
        Pte::new(PhysFrameNum::new(n), PteFlags::user_data())
    }

    #[test]
    fn fresh_frame_is_all_not_present() {
        let f = PtFrame::new();
        for i in [0, 1, 255, 511] {
            assert!(!f.read(i).is_present());
        }
        assert!(f.is_empty());
    }

    #[test]
    fn write_read_roundtrip() {
        let mut f = PtFrame::new();
        f.write(42, pte(0x1000));
        assert_eq!(f.read(42), pte(0x1000));
        assert_eq!(f.populated(), 1);
    }

    #[test]
    fn write_zero_clears() {
        let mut f = PtFrame::new();
        f.write(3, pte(5));
        f.write(3, Pte::not_present());
        assert!(f.is_empty());
    }

    #[test]
    fn promotion_preserves_contents() {
        let mut f = PtFrame::new();
        for i in 0..200u64 {
            f.write(i, pte(i + 1));
        }
        assert_eq!(f.populated(), 200);
        for i in 0..200u64 {
            assert_eq!(f.read(i), pte(i + 1), "entry {i} after promotion");
        }
        assert!(!f.read(300).is_present());
        // Dense representation still supports clears.
        f.write(0, Pte::not_present());
        assert_eq!(f.populated(), 199);
    }

    #[test]
    fn iter_present_in_order() {
        let mut f = PtFrame::new();
        for i in [9u64, 2, 500] {
            f.write(i, pte(i));
        }
        let got: Vec<u64> = f.iter_present().map(|(i, _)| i).collect();
        assert_eq!(got, vec![2, 9, 500]);
    }

    #[test]
    fn iter_present_dense_in_order() {
        let mut f = PtFrame::new();
        for i in (0..512u64).step_by(4) {
            f.write(i, pte(i + 7));
        }
        let got: Vec<u64> = f.iter_present().map(|(i, _)| i).collect();
        let expected: Vec<u64> = (0..512u64).step_by(4).collect();
        assert_eq!(got, expected);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn read_out_of_range_panics() {
        let _ = PtFrame::new().read(512);
    }
}
