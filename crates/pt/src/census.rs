//! Page-table census: footprints and physical contiguity (paper Table 2).
//!
//! The paper motivates ASAP with two measurements over real page tables:
//! the per-level footprint ("for a 100GB dataset ... 8B, 800B, 400KB and
//! 200MB for PL4, PL3, PL2 and PL1", §3.1) and the number of contiguous
//! physical regions the PT pages occupy under the stock buddy allocator
//! (Table 2). [`PtCensus`] computes both from a live simulated page table.

use crate::{PageTable, SimPhysMem};
use asap_types::{ByteSize, PhysFrameNum, PtLevel, PTE_SIZE};

/// Contiguity statistics over a set of physical frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ContigStats {
    /// Number of maximal runs of consecutive frames.
    pub regions: usize,
    /// Total frames examined.
    pub frames: usize,
    /// Length of the longest run.
    pub max_run: usize,
}

impl ContigStats {
    /// Computes contiguity over an arbitrary frame set (order irrelevant).
    #[must_use]
    pub fn from_frames(frames: &[PhysFrameNum]) -> Self {
        if frames.is_empty() {
            return Self::default();
        }
        let mut sorted: Vec<u64> = frames.iter().map(|f| f.raw()).collect();
        sorted.sort_unstable();
        sorted.dedup();
        let mut regions = 1;
        let mut run = 1usize;
        let mut max_run = 1usize;
        for pair in sorted.windows(2) {
            if pair[1] == pair[0] + 1 {
                run += 1;
            } else {
                regions += 1;
                max_run = max_run.max(run);
                run = 1;
            }
        }
        max_run = max_run.max(run);
        Self {
            regions,
            frames: sorted.len(),
            max_run,
        }
    }

    /// Mean run length (frames per region).
    #[must_use]
    pub fn mean_run(&self) -> f64 {
        if self.regions == 0 {
            0.0
        } else {
            self.frames as f64 / self.regions as f64
        }
    }
}

/// Per-level census of one page table.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PtCensus {
    /// Table pages per level, indexed by `PtLevel::depth() - 1`.
    pub pages: [u64; 5],
    /// Present entries per level.
    pub entries: [u64; 5],
    /// Frames backing each level, for contiguity analysis.
    frames_per_level: [Vec<PhysFrameNum>; 5],
}

impl PtCensus {
    /// Collects a census by traversing the radix tree from the root.
    #[must_use]
    pub fn collect(mem: &SimPhysMem, pt: &PageTable) -> Self {
        let mut census = Self::default();
        let root_level = pt.mode().root_level();
        let mut stack: Vec<(PhysFrameNum, PtLevel)> = vec![(pt.root(), root_level)];
        while let Some((frame, level)) = stack.pop() {
            let idx = (level.depth() - 1) as usize;
            census.pages[idx] += 1;
            census.frames_per_level[idx].push(frame);
            let Some(node) = mem.table_frame(frame) else {
                continue;
            };
            for (_, entry) in node.iter_present() {
                census.entries[idx] += 1;
                if level != PtLevel::Pl1 && !entry.is_large_leaf() {
                    let child_level = level.child().expect("non-leaf");
                    stack.push((entry.frame(), child_level));
                }
            }
        }
        census
    }

    /// Table pages at `level`.
    #[must_use]
    pub fn pages_at(&self, level: PtLevel) -> u64 {
        self.pages[(level.depth() - 1) as usize]
    }

    /// Present entries at `level`.
    #[must_use]
    pub fn entries_at(&self, level: PtLevel) -> u64 {
        self.entries[(level.depth() - 1) as usize]
    }

    /// *Populated* footprint of `level` in bytes: present entries × 8 B.
    ///
    /// This matches the paper's §3.1 arithmetic (e.g. "8B" for a PL4 level
    /// holding a single entry).
    #[must_use]
    pub fn footprint_at(&self, level: PtLevel) -> ByteSize {
        ByteSize(self.entries_at(level) * PTE_SIZE)
    }

    /// Total table pages across all levels (Table 2's "PT page count").
    #[must_use]
    pub fn total_pages(&self) -> u64 {
        self.pages.iter().sum()
    }

    /// Contiguity of the frames backing `level`.
    #[must_use]
    pub fn contiguity_at(&self, level: PtLevel) -> ContigStats {
        ContigStats::from_frames(&self.frames_per_level[(level.depth() - 1) as usize])
    }

    /// Contiguity over **all** PT frames (Table 2's "contiguous physical
    /// regions" column).
    #[must_use]
    pub fn contiguity_total(&self) -> ContigStats {
        let all: Vec<PhysFrameNum> = self
            .frames_per_level
            .iter()
            .flat_map(|v| v.iter().copied())
            .collect();
        ContigStats::from_frames(&all)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BumpNodeAllocator, PteFlags};
    use asap_types::{PageSize, PagingMode, VirtAddr};

    #[test]
    fn contig_stats_basics() {
        let f = |xs: &[u64]| {
            ContigStats::from_frames(&xs.iter().map(|&x| PhysFrameNum::new(x)).collect::<Vec<_>>())
        };
        assert_eq!(f(&[]).regions, 0);
        assert_eq!(f(&[5]).regions, 1);
        let s = f(&[1, 2, 3, 10, 11, 20]);
        assert_eq!(s.regions, 3);
        assert_eq!(s.frames, 6);
        assert_eq!(s.max_run, 3);
        assert!((s.mean_run() - 2.0).abs() < 1e-12);
        // Order and duplicates do not matter.
        assert_eq!(f(&[20, 3, 1, 2, 11, 10, 10]).regions, 3);
    }

    #[test]
    fn census_counts_match_small_table() {
        let mut mem = SimPhysMem::new();
        let mut alloc = BumpNodeAllocator::new(PhysFrameNum::new(0x100));
        let mut pt = PageTable::new(PagingMode::FourLevel, &mut mem, &mut alloc);
        // Map 3 pages in one 2 MiB region and 1 page in another 1 GiB region.
        let base = VirtAddr::new(0x10_0000_0000).unwrap();
        for i in 0..3u64 {
            pt.map(
                &mut mem,
                &mut alloc,
                base.checked_add(i * 0x1000).unwrap(),
                PhysFrameNum::new(100 + i),
                PageSize::Size4K,
                PteFlags::user_data(),
            )
            .unwrap();
        }
        let far = VirtAddr::new(0x10_4000_0000).unwrap();
        pt.map(
            &mut mem,
            &mut alloc,
            far,
            PhysFrameNum::new(200),
            PageSize::Size4K,
            PteFlags::user_data(),
        )
        .unwrap();

        let c = PtCensus::collect(&mem, &pt);
        assert_eq!(c.pages_at(PtLevel::Pl4), 1);
        assert_eq!(c.pages_at(PtLevel::Pl3), 1); // both VAs share the PL4 entry
        assert_eq!(c.pages_at(PtLevel::Pl2), 2); // different 1 GiB regions
        assert_eq!(c.pages_at(PtLevel::Pl1), 2);
        assert_eq!(c.entries_at(PtLevel::Pl1), 4);
        assert_eq!(c.total_pages(), 6);
        assert_eq!(c.footprint_at(PtLevel::Pl1).bytes(), 4 * 8);
        // Bump allocation makes all PT frames one contiguous region.
        assert_eq!(c.contiguity_total().regions, 1);
    }

    #[test]
    fn census_skips_large_page_leaves() {
        let mut mem = SimPhysMem::new();
        let mut alloc = BumpNodeAllocator::new(PhysFrameNum::new(0x100));
        let mut pt = PageTable::new(PagingMode::FourLevel, &mut mem, &mut alloc);
        pt.map(
            &mut mem,
            &mut alloc,
            VirtAddr::new(0x4000_0000).unwrap(),
            PhysFrameNum::new(512),
            PageSize::Size2M,
            PteFlags::user_data(),
        )
        .unwrap();
        let c = PtCensus::collect(&mem, &pt);
        assert_eq!(c.pages_at(PtLevel::Pl1), 0, "no PL1 page under a 2MiB leaf");
        assert_eq!(c.entries_at(PtLevel::Pl2), 1);
        assert_eq!(c.total_pages(), 3);
    }

    #[test]
    fn paper_footprint_shape_for_dense_region() {
        // Map a dense 512 MiB region (131072 pages) and check the PL1/PL2
        // footprint ratio is 512:1, the paper's geometric shape.
        let mut mem = SimPhysMem::new();
        let mut alloc = BumpNodeAllocator::new(PhysFrameNum::new(0x10_0000));
        let mut pt = PageTable::new(PagingMode::FourLevel, &mut mem, &mut alloc);
        let base = VirtAddr::new(0x40_0000_0000).unwrap();
        let pages = 512 * 16; // 16 full PL1 tables = 32 MiB
        for i in 0..pages {
            pt.map(
                &mut mem,
                &mut alloc,
                base.checked_add(i * 0x1000).unwrap(),
                PhysFrameNum::new(i),
                PageSize::Size4K,
                PteFlags::user_data(),
            )
            .unwrap();
        }
        let c = PtCensus::collect(&mem, &pt);
        assert_eq!(c.pages_at(PtLevel::Pl1), 16);
        assert_eq!(c.entries_at(PtLevel::Pl1), pages);
        assert_eq!(c.entries_at(PtLevel::Pl2), 16);
        assert_eq!(
            c.footprint_at(PtLevel::Pl1).bytes() / c.footprint_at(PtLevel::Pl2).bytes(),
            512
        );
    }
}
