//! Sparse simulated physical memory for page-table pages.

use crate::{PtFrame, Pte};
use asap_types::FastMap;
use asap_types::{PhysAddr, PhysFrameNum, PTE_SIZE};

/// Simulated machine memory, materializing only the frames that hold
/// page-table pages.
///
/// Data pages never need backing store: the cache and TLB models operate on
/// addresses alone. Page-table pages, in contrast, hold the pointer chains
/// the walker traverses, so they are stored — sparsely — here.
///
/// # Examples
///
/// ```
/// use asap_pt::{Pte, PteFlags, SimPhysMem};
/// use asap_types::{PhysAddr, PhysFrameNum};
///
/// let mut mem = SimPhysMem::new();
/// let frame = PhysFrameNum::new(0x80);
/// mem.install_table_frame(frame);
/// let entry_addr = PhysAddr::new((0x80 << 12) + 8 * 5); // entry index 5
/// mem.write_entry(entry_addr, Pte::new(PhysFrameNum::new(9), PteFlags::user_data()));
/// assert!(mem.read_entry(entry_addr).is_present());
/// ```
#[derive(Debug, Clone, Default)]
pub struct SimPhysMem {
    frames: FastMap<u64, PtFrame>,
}

impl SimPhysMem {
    /// Creates empty physical memory.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `frame` as a page-table page (zero-filled).
    ///
    /// Installing an already-installed frame is a no-op (the OS model may
    /// re-derive placements idempotently).
    pub fn install_table_frame(&mut self, frame: PhysFrameNum) {
        self.frames.entry(frame.raw()).or_default();
    }

    /// Removes a page-table page, returning whether it existed.
    pub fn remove_table_frame(&mut self, frame: PhysFrameNum) -> bool {
        self.frames.remove(&frame.raw()).is_some()
    }

    /// Whether `frame` is a registered page-table page.
    #[must_use]
    pub fn is_table_frame(&self, frame: PhysFrameNum) -> bool {
        self.frames.contains_key(&frame.raw())
    }

    /// Reads the 8-byte entry at physical address `addr`.
    ///
    /// Reads from non-table frames (or unmaterialized memory) return the
    /// not-present entry, mirroring zero-filled RAM.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 8-byte aligned.
    #[must_use]
    pub fn read_entry(&self, addr: PhysAddr) -> Pte {
        assert!(addr.is_aligned(PTE_SIZE), "unaligned PTE read at {addr}");
        let frame = addr.frame_number();
        let index = addr.frame_offset() / PTE_SIZE;
        self.frames
            .get(&frame.raw())
            .map_or(Pte::not_present(), |f| f.read(index))
    }

    /// Writes the 8-byte entry at physical address `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is unaligned or its frame was never installed as a
    /// table frame — writing page-table entries into unregistered memory is
    /// a simulator bug worth failing loudly on.
    pub fn write_entry(&mut self, addr: PhysAddr, pte: Pte) {
        assert!(addr.is_aligned(PTE_SIZE), "unaligned PTE write at {addr}");
        let frame = addr.frame_number();
        let index = addr.frame_offset() / PTE_SIZE;
        let f = self
            .frames
            .get_mut(&frame.raw())
            .unwrap_or_else(|| panic!("PTE write to non-table frame {frame}"));
        f.write(index, pte);
    }

    /// Direct access to a table frame's contents.
    #[must_use]
    pub fn table_frame(&self, frame: PhysFrameNum) -> Option<&PtFrame> {
        self.frames.get(&frame.raw())
    }

    /// Number of materialized table frames.
    #[must_use]
    pub fn table_frame_count(&self) -> usize {
        self.frames.len()
    }

    /// Iterates over all table frames in unspecified order.
    pub fn iter_table_frames(&self) -> impl Iterator<Item = (PhysFrameNum, &PtFrame)> {
        self.frames
            .iter()
            .map(|(&raw, f)| (PhysFrameNum::new(raw), f))
    }

    /// Approximate host-side bytes used by materialized frames (diagnostic).
    #[must_use]
    pub fn approx_host_bytes(&self) -> usize {
        self.frames.values().map(|f| 64 + f.populated() * 24).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PteFlags;

    #[test]
    fn read_from_void_is_not_present() {
        let mem = SimPhysMem::new();
        assert!(!mem.read_entry(PhysAddr::new(0x5000)).is_present());
    }

    #[test]
    fn entry_addressing_within_frame() {
        let mut mem = SimPhysMem::new();
        let frame = PhysFrameNum::new(2);
        mem.install_table_frame(frame);
        for index in [0u64, 1, 511] {
            let addr = frame.base_addr().add(index * PTE_SIZE);
            let pte = Pte::new(PhysFrameNum::new(100 + index), PteFlags::user_data());
            mem.write_entry(addr, pte);
            assert_eq!(mem.read_entry(addr), pte);
        }
        assert_eq!(mem.table_frame(frame).unwrap().populated(), 3);
    }

    #[test]
    #[should_panic(expected = "non-table frame")]
    fn write_outside_tables_panics() {
        let mut mem = SimPhysMem::new();
        mem.write_entry(
            PhysAddr::new(0x9000),
            Pte::new(PhysFrameNum::new(1), PteFlags::user_data()),
        );
    }

    #[test]
    #[should_panic(expected = "unaligned")]
    fn unaligned_read_panics() {
        let mem = SimPhysMem::new();
        let _ = mem.read_entry(PhysAddr::new(0x5001));
    }

    #[test]
    fn install_is_idempotent() {
        let mut mem = SimPhysMem::new();
        let frame = PhysFrameNum::new(7);
        mem.install_table_frame(frame);
        let addr = frame.base_addr();
        mem.write_entry(addr, Pte::new(PhysFrameNum::new(3), PteFlags::user_data()));
        mem.install_table_frame(frame); // must not wipe contents
        assert!(mem.read_entry(addr).is_present());
        assert_eq!(mem.table_frame_count(), 1);
    }

    #[test]
    fn remove_table_frame_works() {
        let mut mem = SimPhysMem::new();
        let frame = PhysFrameNum::new(7);
        mem.install_table_frame(frame);
        assert!(mem.remove_table_frame(frame));
        assert!(!mem.remove_table_frame(frame));
        assert!(!mem.is_table_frame(frame));
    }
}
