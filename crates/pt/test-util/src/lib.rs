//! Shared test helpers for asserting on physical frame layout.
//!
//! Lives beside `asap-pt` (whose census computes the same metric on live
//! page tables) but depends on nothing, so any crate — including ones
//! upstream of `asap-pt` such as `asap-alloc` — can use it as a
//! dev-dependency without creating a cycle.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Returns `(contiguous_regions, mean_run_length)` for a set of frame
/// numbers: the number of maximal runs of consecutive frames, and the
/// average frames per run. Duplicates are ignored; an empty slice yields
/// `(0, 0.0)`.
#[must_use]
pub fn contiguity(frames: &[u64]) -> (usize, f64) {
    let mut sorted = frames.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    if sorted.is_empty() {
        return (0, 0.0);
    }
    let mut regions = 1;
    for pair in sorted.windows(2) {
        if pair[1] != pair[0] + 1 {
            regions += 1;
        }
    }
    (regions, sorted.len() as f64 / regions as f64)
}

#[cfg(test)]
mod tests {
    use super::contiguity;

    #[test]
    fn empty_is_zero() {
        assert_eq!(contiguity(&[]), (0, 0.0));
    }

    #[test]
    fn single_run() {
        let (regions, mean) = contiguity(&[5, 6, 7, 8]);
        assert_eq!(regions, 1);
        assert!((mean - 4.0).abs() < 1e-12);
    }

    #[test]
    fn split_runs_and_duplicates() {
        // {1,2} and {10}: two regions, 3 unique frames, mean 1.5.
        let (regions, mean) = contiguity(&[2, 1, 10, 2]);
        assert_eq!(regions, 2);
        assert!((mean - 1.5).abs() < 1e-12);
    }
}
