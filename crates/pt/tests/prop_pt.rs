//! Property tests: page-table map/translate/walk invariants.

use asap_pt::{BumpNodeAllocator, PageTable, PtCensus, PteFlags, SimPhysMem, Walker};
use asap_types::{PageSize, PagingMode, PhysFrameNum, PtLevel, VirtAddr};
use proptest::collection::btree_set;
use proptest::prelude::*;

fn arb_vpn48() -> impl Strategy<Value = u64> {
    0u64..(1 << 36) // page numbers within 48-bit VAs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every mapped page translates back to exactly the frame it was mapped
    /// to, and unmapped neighbours stay unmapped.
    #[test]
    fn map_translate_roundtrip(vpns in btree_set(arb_vpn48(), 1..40)) {
        let mut mem = SimPhysMem::new();
        let mut alloc = BumpNodeAllocator::new(PhysFrameNum::new(0x100_0000));
        let mut pt = PageTable::new(PagingMode::FourLevel, &mut mem, &mut alloc);
        for (i, &vpn) in vpns.iter().enumerate() {
            let va = VirtAddr::new(vpn << 12).unwrap();
            pt.map(&mut mem, &mut alloc, va, PhysFrameNum::new(i as u64 + 1),
                   PageSize::Size4K, PteFlags::user_data()).unwrap();
        }
        for (i, &vpn) in vpns.iter().enumerate() {
            let va = VirtAddr::new(vpn << 12).unwrap();
            let t = pt.translate(&mem, va).unwrap();
            prop_assert_eq!(t.frame, PhysFrameNum::new(i as u64 + 1));
            // A neighbour page not in the set must not translate.
            let neighbour = vpn ^ 1;
            if !vpns.contains(&neighbour) {
                let nva = VirtAddr::new(neighbour << 12).unwrap();
                prop_assert!(pt.translate(&mem, nva).is_none());
            }
        }
    }

    /// The walker and `translate` always agree, and successful walks visit
    /// levels in strictly descending order ending at PL1.
    #[test]
    fn walker_agrees_with_translate(vpns in btree_set(arb_vpn48(), 1..30),
                                    probe in arb_vpn48()) {
        let mut mem = SimPhysMem::new();
        let mut alloc = BumpNodeAllocator::new(PhysFrameNum::new(0x100_0000));
        let mut pt = PageTable::new(PagingMode::FourLevel, &mut mem, &mut alloc);
        for &vpn in &vpns {
            let va = VirtAddr::new(vpn << 12).unwrap();
            pt.map(&mut mem, &mut alloc, va, PhysFrameNum::new(vpn & 0xffff_ffff),
                   PageSize::Size4K, PteFlags::user_data()).unwrap();
        }
        for vpn in vpns.iter().copied().chain([probe]) {
            let va = VirtAddr::new(vpn << 12).unwrap();
            let trace = Walker::walk(&mem, &pt, va);
            prop_assert_eq!(trace.translation(), pt.translate(&mem, va));
            let depths: Vec<u32> = trace.steps.iter().map(|s| s.level.depth()).collect();
            for pair in depths.windows(2) {
                prop_assert_eq!(pair[1], pair[0] - 1, "levels strictly descend");
            }
            prop_assert_eq!(depths[0], 4, "walk starts at the root");
            if !trace.is_fault() {
                prop_assert_eq!(*depths.last().unwrap(), 1);
            }
        }
    }

    /// The census' per-level entry counts equal the number of distinct
    /// VA-prefixes at that level, and PL1 entries equal mapped pages.
    #[test]
    fn census_counts_match_prefixes(vpns in btree_set(arb_vpn48(), 1..50)) {
        let mut mem = SimPhysMem::new();
        let mut alloc = BumpNodeAllocator::new(PhysFrameNum::new(0x100_0000));
        let mut pt = PageTable::new(PagingMode::FourLevel, &mut mem, &mut alloc);
        for &vpn in &vpns {
            let va = VirtAddr::new(vpn << 12).unwrap();
            pt.map(&mut mem, &mut alloc, va, PhysFrameNum::new(1),
                   PageSize::Size4K, PteFlags::user_data()).unwrap();
        }
        let census = PtCensus::collect(&mem, &pt);
        prop_assert_eq!(census.entries_at(PtLevel::Pl1), vpns.len() as u64);
        for level in [PtLevel::Pl1, PtLevel::Pl2, PtLevel::Pl3] {
            // Distinct table pages at `level` = distinct VA prefixes above it.
            let distinct_tables = vpns
                .iter()
                .map(|vpn| (vpn << 12) >> level.table_coverage().trailing_zeros())
                .collect::<std::collections::BTreeSet<_>>()
                .len() as u64;
            prop_assert_eq!(census.pages_at(level), distinct_tables,
                            "table pages at {}", level);
        }
        // Page counts shrink (weakly) toward the root.
        prop_assert!(census.pages_at(PtLevel::Pl2) <= census.pages_at(PtLevel::Pl1));
        prop_assert!(census.pages_at(PtLevel::Pl3) <= census.pages_at(PtLevel::Pl2));
        prop_assert_eq!(census.pages_at(PtLevel::Pl4), 1);
    }

    /// Unmapping restores non-translation and is idempotent per page.
    #[test]
    fn unmap_removes_translation(vpns in btree_set(arb_vpn48(), 2..20)) {
        let mut mem = SimPhysMem::new();
        let mut alloc = BumpNodeAllocator::new(PhysFrameNum::new(0x100_0000));
        let mut pt = PageTable::new(PagingMode::FourLevel, &mut mem, &mut alloc);
        let all: Vec<u64> = vpns.iter().copied().collect();
        for &vpn in &all {
            let va = VirtAddr::new(vpn << 12).unwrap();
            pt.map(&mut mem, &mut alloc, va, PhysFrameNum::new(9),
                   PageSize::Size4K, PteFlags::user_data()).unwrap();
        }
        // Unmap the first half; second half must survive.
        let (gone, kept) = all.split_at(all.len() / 2);
        for &vpn in gone {
            let va = VirtAddr::new(vpn << 12).unwrap();
            pt.unmap(&mut mem, va).unwrap();
            prop_assert!(pt.translate(&mem, va).is_none());
            prop_assert!(pt.unmap(&mut mem, va).is_err());
        }
        for &vpn in kept {
            let va = VirtAddr::new(vpn << 12).unwrap();
            prop_assert!(pt.translate(&mem, va).is_some());
        }
    }
}
