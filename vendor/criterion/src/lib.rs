//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no network access, so the workspace vendors
//! the subset of the criterion 0.5 API its benches use: [`Criterion`],
//! [`BenchmarkGroup`] (`sample_size` / `bench_function` / `finish`),
//! [`Bencher::iter`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Bench files compile unchanged against the
//! real crate.
//!
//! Measurement is intentionally simple: each benchmark is calibrated to a
//! per-sample time budget, then `sample_size` samples are taken and the
//! median, minimum, and maximum per-iteration times are printed. There are
//! no statistical regression reports, plots, or baselines — swap in the
//! real criterion for those.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmarked
/// work. Delegates to [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Per-iteration timing collected for one benchmark.
#[derive(Debug, Clone, Copy)]
struct Sample {
    nanos_per_iter: f64,
}

/// The benchmark driver. One instance is threaded through every group
/// registered with [`criterion_group!`].
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
    sample_budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // CRITERION_QUICK=1 cuts the per-sample budget for smoke runs.
        let quick = std::env::var("CRITERION_QUICK").is_ok_and(|v| v == "1");
        Self {
            default_sample_size: if quick { 10 } else { 20 },
            sample_budget: if quick {
                Duration::from_millis(2)
            } else {
                Duration::from_millis(10)
            },
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: None,
        }
    }

    /// Runs a single stand-alone benchmark (no group).
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        let budget = self.sample_budget;
        run_benchmark(&id.into(), sample_size, budget, f);
        self
    }
}

/// A named set of benchmarks sharing configuration, created by
/// [`Criterion::benchmark_group`].
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples taken per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Registers and immediately runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        let samples = self
            .sample_size
            .unwrap_or(self.criterion.default_sample_size);
        run_benchmark(&full, samples, self.criterion.sample_budget, f);
        self
    }

    /// Ends the group. (Upstream flushes reports here; the shim prints
    /// results eagerly, so this is a no-op kept for API compatibility.)
    pub fn finish(self) {}
}

/// Handle passed to each benchmark closure; call [`Bencher::iter`] with the
/// routine to measure.
#[derive(Debug, Default)]
pub struct Bencher {
    iters_per_sample: u64,
    samples_wanted: usize,
    samples: Vec<Sample>,
}

impl Bencher {
    /// Times `routine`, taking the configured number of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.samples_wanted {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            self.samples.push(Sample {
                nanos_per_iter: elapsed.as_nanos() as f64 / self.iters_per_sample as f64,
            });
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, samples: usize, budget: Duration, mut f: F) {
    // Calibration pass: one sample of one iteration to estimate cost.
    let mut probe = Bencher {
        iters_per_sample: 1,
        samples_wanted: 1,
        samples: Vec::new(),
    };
    f(&mut probe);
    let Some(first) = probe.samples.first() else {
        println!("{id:<44} (no measurement: bencher.iter never called)");
        return;
    };
    let per_iter = first.nanos_per_iter.max(1.0);
    let iters = ((budget.as_nanos() as f64 / per_iter) as u64).clamp(1, 1_000_000);

    let mut bencher = Bencher {
        iters_per_sample: iters,
        samples_wanted: samples,
        samples: Vec::new(),
    };
    f(&mut bencher);
    let mut times: Vec<f64> = bencher.samples.iter().map(|s| s.nanos_per_iter).collect();
    if times.is_empty() {
        println!("{id:<44} (no measurement: bencher.iter never called)");
        return;
    }
    times.sort_by(|a, b| a.total_cmp(b));
    let median = times[times.len() / 2];
    println!(
        "{id:<44} median {:>12}  min {:>12}  max {:>12}  ({} samples x {} iters)",
        fmt_nanos(median),
        fmt_nanos(times[0]),
        fmt_nanos(*times.last().unwrap()),
        times.len(),
        iters,
    );
}

fn fmt_nanos(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Bundles benchmark functions into a named group runner, mirroring
/// upstream `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the given groups, mirroring upstream
/// `criterion_main!`. Requires `harness = false` on the bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(5);
        let mut runs = 0u64;
        g.bench_function("count", |b| b.iter(|| runs += 1));
        g.finish();
        assert!(runs > 0, "routine must actually execute");
    }

    #[test]
    fn black_box_is_identity() {
        assert_eq!(black_box(41) + 1, 42);
    }

    #[test]
    fn nanos_formatting_scales() {
        assert!(fmt_nanos(5.0).ends_with("ns"));
        assert!(fmt_nanos(5_000.0).ends_with("µs"));
        assert!(fmt_nanos(5_000_000.0).ends_with("ms"));
        assert!(fmt_nanos(5_000_000_000.0).ends_with('s'));
    }
}
