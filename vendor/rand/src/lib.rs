//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this repository has no network access, so the
//! workspace vendors the *subset* of the `rand` 0.8 API that the simulator
//! actually uses: [`rngs::SmallRng`], the [`Rng`] extension methods
//! `gen::<f64>()` / `gen_range(..)`, and [`SeedableRng::seed_from_u64`].
//! The generator is xoshiro256++ (the same family `SmallRng` uses upstream
//! on 64-bit targets), seeded through SplitMix64 exactly as upstream's
//! `seed_from_u64` does, so streams are deterministic, well distributed,
//! and cheap.
//!
//! If the real `rand` crate ever becomes available, deleting this directory
//! and pointing `[workspace.dependencies] rand` back at crates.io is the
//! only change required.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types that can be sampled uniformly from an `Rng` (the subset of
/// upstream's `Standard` distribution this workspace needs).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision, matching upstream.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// Uniform draw from `[0, span)` via Lemire-style widening multiply with a
/// single rejection loop to remove modulo bias.
fn uniform_u64<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        let lo = m as u64;
        if lo >= span.wrapping_neg() % span {
            return (m >> 64) as u64;
        }
        // Biased tail: redraw (vanishingly rare for the small spans used
        // by the simulator).
    }
}

/// User-facing random-value methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard distribution
    /// (`f64` in `[0, 1)`, full-width integers, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// RNGs constructible from a seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed via SplitMix64 expansion
    /// (identical derivation to upstream `seed_from_u64`).
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic RNG: xoshiro256++.
    ///
    /// Matches the role (and on 64-bit targets, the algorithm family) of
    /// `rand::rngs::SmallRng`. Never use for anything security-sensitive.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(mut state: u64) -> Self {
            // SplitMix64, as upstream uses to expand small seeds.
            let mut next = move || {
                state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = rng.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(0usize..=5);
            assert!(y <= 5);
            let f = rng.gen_range(1.0f64..2.0);
            assert!((1.0..2.0).contains(&f));
        }
    }

    #[test]
    fn unit_f64_covers_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..10_000 {
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
            lo |= f < 0.1;
            hi |= f > 0.9;
        }
        assert!(lo && hi, "both tails of [0,1) must be reachable");
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for c in counts {
            assert!(
                (8_000..12_000).contains(&c),
                "bucket count {c} out of range"
            );
        }
    }
}
