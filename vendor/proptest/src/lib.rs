//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the subset of the proptest 1.x API its test suites use:
//!
//! - the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! - [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_oneof!`],
//! - range strategies (`0u64..100`, `1u32..=5`, `0.5f64..2.0`),
//! - [`Strategy::prop_map`] and [`collection::vec`] /
//!   [`collection::btree_set`],
//! - [`test_runner::ProptestConfig::with_cases`].
//!
//! Semantics: each test runs `cases` deterministic random cases (seeded
//! per test name, so failures reproduce across runs). **Shrinking is not
//! implemented** — a failing case reports its generated inputs verbatim
//! instead of a minimized counterexample. That is the one observable
//! difference from upstream; assertion behaviour and strategy shapes
//! match.
//!
//! [`Strategy::prop_map`]: strategy::Strategy::prop_map
//! [`collection::vec`]: collection::vec
//! [`collection::btree_set`]: collection::btree_set
//! [`test_runner::ProptestConfig::with_cases`]: test_runner::ProptestConfig::with_cases

#![forbid(unsafe_code)]
#![warn(missing_docs)]

// Re-exported so `proptest!`-generated code can reach the RNG through
// `$crate` even when the invoking crate does not depend on `rand` itself.
#[doc(hidden)]
pub use rand as __rand;

/// Strategy trait and combinators.
pub mod strategy {
    use rand::rngs::SmallRng;

    /// A recipe for generating values of type [`Strategy::Value`].
    ///
    /// Unlike upstream, generation is direct (no value tree / shrinking).
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Generates one value from `rng`.
        fn generate(&self, rng: &mut SmallRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy, as produced by [`Strategy::boxed`].
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut SmallRng) -> T {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut SmallRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut SmallRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy that always yields a clone of one value (upstream `Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut SmallRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between boxed alternatives; built by [`prop_oneof!`].
    ///
    /// [`prop_oneof!`]: crate::prop_oneof
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Creates a union over `options`.
        ///
        /// # Panics
        ///
        /// Panics if `options` is empty.
        #[must_use]
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Self { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut SmallRng) -> T {
            use rand::Rng;
            let idx = rng.gen_range(0..self.options.len());
            self.options[idx].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut SmallRng) -> $t {
                    use rand::Rng;
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut SmallRng) -> $t {
                    use rand::Rng;
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for ::std::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut SmallRng) -> f64 {
            use rand::Rng;
            rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A: 0);
    impl_tuple_strategy!(A: 0, B: 1);
    impl_tuple_strategy!(A: 0, B: 1, C: 2);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
}

/// Collection strategies: [`vec()`](collection::vec) and
/// [`btree_set()`](collection::btree_set).
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// An inclusive-minimum, exclusive-maximum size specification for
    /// collection strategies (converted from `usize`, `a..b`, or `a..=b`).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl SizeRange {
        fn pick(self, rng: &mut SmallRng) -> usize {
            if self.min + 1 >= self.max_exclusive {
                self.min
            } else {
                rng.gen_range(self.min..self.max_exclusive)
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            let (start, end) = r.into_inner();
            assert!(start <= end, "empty size range");
            Self {
                min: start,
                max_exclusive: end + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy produced by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>` with a target size drawn from
    /// `size`. Duplicate draws are retried a bounded number of times, so
    /// the set may come out smaller than the target when the element
    /// domain is nearly exhausted (same best-effort contract as upstream).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy produced by [`btree_set()`].
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut SmallRng) -> BTreeSet<S::Value> {
            let target = self.size.pick(rng);
            let mut set = BTreeSet::new();
            let mut attempts = 0usize;
            let max_attempts = target * 20 + 100;
            while set.len() < target && attempts < max_attempts {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

/// Test-runner configuration and error plumbing used by [`proptest!`].
pub mod test_runner {
    /// Configuration for a `proptest!` block, set via
    /// `#![proptest_config(ProptestConfig::with_cases(n))]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases per test.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        /// 64 cases — smaller than upstream's 256 to keep the shim's
        /// un-shrunk failures and CI runtimes manageable.
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// A failed property assertion, carried out of the test body by
    /// `prop_assert!` and reported by the `proptest!` harness.
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Creates a failure with the given message.
        #[must_use]
        pub fn fail(message: String) -> Self {
            Self { message }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Derives a per-test base seed from the test's module path and name,
    /// so every case is deterministic and failures reproduce.
    #[must_use]
    pub fn seed_for(test_name: &str) -> u64 {
        // FNV-1a, good enough to decorrelate sibling tests.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

/// Everything a `proptest!` test module normally imports.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares property tests. Mirrors upstream's surface:
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///
///     // In a real test module, write `#[test]` on each function so the
///     // harness collects it; omitted here so the doctest can call it.
///     fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
///
/// addition_commutes();
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`]; do not invoke directly.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            use $crate::strategy::Strategy as _;
            let config = $config;
            let mut rng = <$crate::__rand::rngs::SmallRng as $crate::__rand::SeedableRng>::seed_from_u64(
                $crate::test_runner::seed_for(concat!(module_path!(), "::", stringify!($name))),
            );
            for case in 0..config.cases {
                $(let $arg = ($strategy).generate(&mut rng);)+
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}, "),+),
                    $(&$arg),+
                );
                let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    Ok(())
                })();
                if let Err(err) = outcome {
                    panic!(
                        "proptest case {}/{} failed: {}\n  inputs: {}\n  (shrinking unavailable in the vendored shim)",
                        case + 1, config.cases, err, inputs,
                    );
                }
            }
        }
    )*};
}

/// `assert!` that reports through the proptest harness with the generated
/// inputs attached. Only usable inside [`proptest!`] bodies.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "{}: `{:?}` == `{:?}`",
            format!($($fmt)+),
            left,
            right
        );
    }};
}

/// `assert_ne!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "{}: `{:?}` != `{:?}`",
            format!($($fmt)+),
            left,
            right
        );
    }};
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 5u64..10, y in 3u32..=4) {
            prop_assert!((5..10).contains(&x));
            prop_assert!(y == 3 || y == 4);
        }

        #[test]
        fn prop_map_applies(v in (0u64..100).prop_map(|x| x * 2)) {
            prop_assert_eq!(v % 2, 0);
        }

        #[test]
        fn collections_hit_size_bounds(
            xs in crate::collection::vec(0u64..1000, 2..5),
            set in crate::collection::btree_set(0u64..1_000_000, 1..8),
        ) {
            prop_assert!(xs.len() >= 2 && xs.len() < 5);
            prop_assert!(!set.is_empty() && set.len() < 8);
        }

        #[test]
        fn oneof_covers_all_arms(v in prop_oneof![0u64..10, 100u64..110]) {
            prop_assert!(v < 10 || (100..110).contains(&v), "got {}", v);
        }
    }

    #[test]
    fn failing_case_reports_inputs() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                fn always_fails(x in 0u64..10) {
                    prop_assert!(x > 100, "x was {}", x);
                }
            }
            always_fails();
        });
        let err = result.expect_err("must fail");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("inputs: x ="), "message was: {msg}");
    }

    #[test]
    fn generation_is_deterministic() {
        use crate::strategy::Strategy;
        let strat = crate::collection::vec(0u64..1_000_000, 10);
        let a: Vec<u64> = strat.generate(&mut SmallRng::seed_from_u64(9));
        let b: Vec<u64> = strat.generate(&mut SmallRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
